//! Element matchers (step ② of the paper's architecture).
//!
//! An [`ElementMatcher`] compares one personal-schema node with one repository node and
//! returns a similarity in `[0,1]`. Bellflower uses a single *localized* matcher, the
//! fuzzy name matcher; COMA-style systems combine several. Both styles are supported:
//! [`NameElementMatcher`] is the paper's configuration, [`CompositeElementMatcher`]
//! aggregates any number of matchers with a [`CombineStrategy`].
//!
//! [`match_elements`] runs the matchers over personal × repository and produces the
//! [`CandidateSet`] of mapping elements — the input to both the clusterer and the
//! mapping generators.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use xsm_schema::{SchemaNode, SchemaTree};
use xsm_similarity::{
    compare_string_fuzzy, CombineStrategy, SimilarityCache, StringSimilarity, SynonymTable,
};

use crate::candidates::{CandidateSet, MappingElement};
use xsm_repo::{
    CandidateScratch, FeatureStore, LengthWindow, MergePolicy, NameIndex, ResolvedQuery,
    SchemaRepository,
};
use xsm_similarity::features::{fuzzy_features, SimScratch};

/// Compares a personal node with a repository node.
pub trait ElementMatcher: Send + Sync {
    /// Similarity of the two nodes in `[0,1]`.
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64;
    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's matcher: fuzzy name similarity (`CompareStringFuzzy`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NameElementMatcher;

impl ElementMatcher for NameElementMatcher {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        compare_string_fuzzy(&personal.name, &repo.name)
    }
    fn name(&self) -> &'static str {
        "name(fuzzy)"
    }
}

/// A name matcher parameterised by any string kernel from `xsm-similarity`.
pub struct KernelNameMatcher<K: StringSimilarity> {
    kernel: K,
}

impl<K: StringSimilarity> KernelNameMatcher<K> {
    /// Wrap a string kernel as an element matcher.
    pub fn new(kernel: K) -> Self {
        KernelNameMatcher { kernel }
    }
}

impl<K: StringSimilarity> ElementMatcher for KernelNameMatcher<K> {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        self.kernel.similarity(&personal.name, &repo.name)
    }
    fn name(&self) -> &'static str {
        "name(kernel)"
    }
}

/// Datatype compatibility matcher (COMA's "type" matcher). Nodes without a declared
/// type score a neutral 0.5 against anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatatypeElementMatcher;

impl ElementMatcher for DatatypeElementMatcher {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        match (personal.datatype, repo.datatype) {
            (Some(a), Some(b)) => a.compatibility(b),
            _ => 0.5,
        }
    }
    fn name(&self) -> &'static str {
        "datatype"
    }
}

/// Synonym matcher: full marks for names the thesaurus declares synonymous, otherwise
/// falls back to the fuzzy kernel.
pub struct SynonymElementMatcher {
    table: SynonymTable,
}

impl SynonymElementMatcher {
    /// Use the built-in thesaurus.
    pub fn builtin() -> Self {
        SynonymElementMatcher {
            table: SynonymTable::builtin(),
        }
    }

    /// Use a custom thesaurus.
    pub fn new(table: SynonymTable) -> Self {
        SynonymElementMatcher { table }
    }
}

impl ElementMatcher for SynonymElementMatcher {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        match self.table.similarity(&personal.name, &repo.name) {
            Some(s) => s,
            None => compare_string_fuzzy(&personal.name, &repo.name),
        }
    }
    fn name(&self) -> &'static str {
        "synonym"
    }
}

/// Wraps a *name-based, symmetric* element matcher with a shared [`SimilarityCache`].
///
/// The cache is keyed by the **order-normalised** name pair, so the inner matcher
/// must depend on the node names only AND be symmetric in them — i.e.
/// `compare(a, b) == compare(b, a)` (true for [`NameElementMatcher`],
/// [`KernelNameMatcher`] and [`SynonymElementMatcher`]; wrong for matchers that also
/// look at datatypes, and wrong for directional scorers like prefix containment,
/// which would get the swapped-argument score for half of all pairs). A long-lived
/// service shares one `Arc`'d cache across every query so that repeated repository
/// names are scored once, not once per query.
pub struct CachedElementMatcher<M> {
    inner: M,
    cache: Arc<SimilarityCache>,
}

impl<M: ElementMatcher> CachedElementMatcher<M> {
    /// Wrap `inner`, memoizing its scores in `cache`.
    pub fn new(inner: M, cache: Arc<SimilarityCache>) -> Self {
        CachedElementMatcher { inner, cache }
    }

    /// The shared cache (for hit-rate reporting).
    pub fn cache(&self) -> &SimilarityCache {
        &self.cache
    }
}

impl<M: ElementMatcher> ElementMatcher for CachedElementMatcher<M> {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        self.cache.get_or_compute(&personal.name, &repo.name, || {
            self.inner.compare(personal, repo)
        })
    }
    fn name(&self) -> &'static str {
        "cached"
    }
}

/// Weighted combination of several element matchers.
pub struct CompositeElementMatcher {
    matchers: Vec<(f64, Box<dyn ElementMatcher>)>,
    strategy: CombineStrategy,
}

impl CompositeElementMatcher {
    /// Create an empty composite using the given combination strategy.
    pub fn new(strategy: CombineStrategy) -> Self {
        CompositeElementMatcher {
            matchers: Vec::new(),
            strategy,
        }
    }

    /// Add a matcher with a weight (weights matter only for weighted averaging).
    pub fn add(mut self, weight: f64, matcher: Box<dyn ElementMatcher>) -> Self {
        self.matchers.push((weight, matcher));
        self
    }

    /// A COMA-flavoured default: fuzzy name (weight 0.6), synonyms (0.25), datatype (0.15).
    pub fn coma_like() -> Self {
        CompositeElementMatcher::new(CombineStrategy::WeightedAverage)
            .add(0.6, Box::new(NameElementMatcher))
            .add(0.25, Box::new(SynonymElementMatcher::builtin()))
            .add(0.15, Box::new(DatatypeElementMatcher))
    }
}

impl ElementMatcher for CompositeElementMatcher {
    fn compare(&self, personal: &SchemaNode, repo: &SchemaNode) -> f64 {
        let values: Vec<(f64, f64)> = self
            .matchers
            .iter()
            .map(|(w, m)| (*w, m.compare(personal, repo)))
            .collect();
        self.strategy.combine(&values)
    }
    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Configuration of the element-matching pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElementMatchConfig {
    /// Minimum element similarity for a pair to become a mapping element.
    ///
    /// The paper keeps every pair with a "non-zero similarity index"; with a graded
    /// kernel that would admit almost everything, so Bellflower-style systems in
    /// practice use a floor. 0.5 keeps every repository element whose name is at least
    /// half-way similar to some personal-schema name, which reproduces the paper's
    /// regime of thousands of mapping elements spread over most repository trees.
    pub min_similarity: f64,
    /// Optional cap on the number of mapping elements kept per personal node
    /// (highest-similarity first); `None` keeps everything above the floor.
    pub max_candidates_per_node: Option<usize>,
}

impl Default for ElementMatchConfig {
    fn default() -> Self {
        ElementMatchConfig {
            min_similarity: 0.5,
            max_candidates_per_node: None,
        }
    }
}

impl ElementMatchConfig {
    /// Builder-style floor override (clamped to `[0,1]`).
    pub fn with_min_similarity(mut self, floor: f64) -> Self {
        self.min_similarity = floor.clamp(0.0, 1.0);
        self
    }

    /// Builder-style candidate cap.
    pub fn with_max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates_per_node = Some(cap);
        self
    }
}

/// Run element matching: compare every node of `personal` against every node of `repo`
/// and collect mapping elements with similarity ≥ `config.min_similarity`.
///
/// Complexity is `O(|N_s| · |N_R| · kernel)`; the q-gram index in `xsm-repo` can be
/// used by callers to pre-filter, but the default path mirrors the paper's exhaustive
/// element-matching step.
pub fn match_elements(
    personal: &SchemaTree,
    repo: &SchemaRepository,
    matcher: &dyn ElementMatcher,
    config: &ElementMatchConfig,
) -> CandidateSet {
    let personal_nodes = personal.preorder();
    let mut set = CandidateSet::new(personal_nodes.clone());
    for &pnode in &personal_nodes {
        let pdata = personal.node(pnode).expect("preorder yields valid ids");
        for (rid, rdata) in repo.nodes() {
            let sim = matcher.compare(pdata, rdata);
            if sim >= config.min_similarity && sim > 0.0 {
                set.push(MappingElement::new(pnode, rid, sim));
            }
        }
    }
    finish(set, personal_nodes, config)
}

/// Run element matching through a prebuilt [`NameIndex`]: for every personal node,
/// only the repository nodes surfaced by the exact and approximate (q-gram) lookups
/// are scored, instead of scanning the whole forest.
///
/// `min_overlap` is the q-gram overlap fraction passed to
/// [`NameIndex::lookup_approximate`]; the count filter is conservative for moderate
/// similarity floors, but a very low floor combined with a high `min_overlap` can
/// prune pairs the exhaustive scan would keep — which is exactly the recall/latency
/// trade a serving layer plans per query.
pub fn match_elements_with_index(
    personal: &SchemaTree,
    repo: &SchemaRepository,
    index: &NameIndex,
    matcher: &dyn ElementMatcher,
    config: &ElementMatchConfig,
    min_overlap: f64,
) -> CandidateSet {
    let personal_nodes = personal.preorder();
    let mut set = CandidateSet::new(personal_nodes.clone());
    for &pnode in &personal_nodes {
        let pdata = personal.node(pnode).expect("preorder yields valid ids");
        for rid in index_candidates(index, &pdata.name, min_overlap) {
            let rdata = repo.node(rid).expect("index ids are valid");
            let sim = matcher.compare(pdata, rdata);
            if sim >= config.min_similarity && sim > 0.0 {
                set.push(MappingElement::new(pnode, rid, sim));
            }
        }
    }
    finish(set, personal_nodes, config)
}

/// Candidate retrieval of the string reference path: approximate (q-gram) plus
/// exact lookups, deduplicated, in canonical id order. The feature path retrieves
/// through [`index_candidates_filtered`] instead — a *pre-scoring* subset shaped by
/// the length window — but both paths apply the same `min_similarity` floor after
/// scoring, and the window only drops pairs whose length difference already caps
/// them below that floor, so the **scored** candidate sets (and therefore the
/// byte-identical replay guarantee) are unchanged.
fn index_candidates(
    index: &NameIndex,
    name: &str,
    min_overlap: f64,
) -> Vec<xsm_schema::GlobalNodeId> {
    let mut candidates = index.lookup_approximate(name, min_overlap);
    candidates.extend_from_slice(index.lookup_exact(name));
    candidates.sort();
    candidates.dedup();
    candidates
}

/// Filter–verify candidate retrieval of the feature path: one resolved candidate
/// query per personal node, with the length window derived from the
/// similarity floor the scores are filtered by afterwards. Exact-name hits are
/// always in-window (equal lowercased names have equal lengths), so the union
/// stays complete.
fn index_candidates_filtered(
    index: &NameIndex,
    name: &str,
    resolved: &ResolvedQuery,
    min_overlap: f64,
    window: LengthWindow,
    scratch: &mut CandidateScratch,
) -> Vec<xsm_schema::GlobalNodeId> {
    let (mut candidates, _) =
        index.lookup_candidates_resolved(resolved, min_overlap, window, MergePolicy::Auto, scratch);
    candidates.extend_from_slice(index.lookup_exact(name));
    candidates.sort();
    candidates.dedup();
    candidates
}

/// Element matching through the repository's [`FeatureStore`]: the zero-allocation
/// fast path of [`match_elements`] for the paper's fuzzy name kernel.
///
/// Query-side [`xsm_similarity::NameFeatures`] are built **once per personal node**
/// (not once per candidate pair); repository-side features were built once at store
/// construction. Each pair is then scored by
/// [`fuzzy_features`] — bit-identical to
/// [`compare_string_fuzzy`] on the node names, so this produces byte-identical
/// candidate sets to `match_elements(…, &NameElementMatcher, …)` while the inner
/// loop performs no allocation and no hashing (bit-parallel edit distance for names
/// of ≤ 64 characters, DP over the scratch rows beyond).
pub fn match_elements_features(
    personal: &SchemaTree,
    store: &FeatureStore,
    config: &ElementMatchConfig,
    scratch: &mut SimScratch,
) -> CandidateSet {
    let personal_nodes = personal.preorder();
    let mut set = CandidateSet::new(personal_nodes.clone());
    for &pnode in &personal_nodes {
        let pdata = personal.node(pnode).expect("preorder yields valid ids");
        let pfeatures = store.query_features(&pdata.name);
        // Alive nodes only: tombstoned trees must be invisible to the
        // exhaustive path exactly as the index-pruned path filters them.
        for (rid, rfeatures) in store.iter_alive() {
            let sim = fuzzy_features(&pfeatures, rfeatures, scratch);
            if sim >= config.min_similarity && sim > 0.0 {
                set.push(MappingElement::new(pnode, rid, sim));
            }
        }
    }
    finish(set, personal_nodes, config)
}

/// Index-pruned element matching through the [`FeatureStore`]: the zero-allocation
/// fast path of [`match_elements_with_index`] for the paper's fuzzy name kernel.
/// Candidate retrieval runs the filter–verify pipeline (length-bucketed postings,
/// count-threshold merging over `candidates` scratch) with the length window
/// derived from `config.min_similarity`; scoring runs on interned ids and
/// precomputed features. Results are byte-identical to the string path with
/// [`NameElementMatcher`]: the window only skips pairs the similarity floor would
/// reject after scoring anyway.
pub fn match_elements_with_index_features(
    personal: &SchemaTree,
    index: &NameIndex,
    config: &ElementMatchConfig,
    min_overlap: f64,
    scratch: &mut SimScratch,
    candidates: &mut CandidateScratch,
) -> CandidateSet {
    let resolved = resolve_personal_queries(personal, index);
    match_elements_with_index_features_resolved(
        personal,
        index,
        config,
        min_overlap,
        &resolved,
        scratch,
        candidates,
    )
}

/// Resolve every personal name against `index`, in the tree's pre-order — the
/// slice [`match_elements_with_index_features_resolved`] consumes. Exposed so a
/// serving engine can resolve once and share the result with its query planner
/// ([`xsm_repo::NameIndex::resolve_query`] is also what the planner's windowed
/// volume estimate reads).
pub fn resolve_personal_queries(personal: &SchemaTree, index: &NameIndex) -> Vec<ResolvedQuery> {
    personal
        .preorder()
        .iter()
        .map(|&node| {
            let data = personal.node(node).expect("preorder yields valid ids");
            index.resolve_query(&data.name)
        })
        .collect()
}

/// [`match_elements_with_index_features`] with the per-node query resolutions
/// supplied by the caller (`resolved` parallel to `personal.preorder()`), so a
/// pipeline that already resolved the names for planning never re-walks their
/// grams here.
pub fn match_elements_with_index_features_resolved(
    personal: &SchemaTree,
    index: &NameIndex,
    config: &ElementMatchConfig,
    min_overlap: f64,
    resolved: &[ResolvedQuery],
    scratch: &mut SimScratch,
    candidates: &mut CandidateScratch,
) -> CandidateSet {
    let store = index.features();
    let window = LengthWindow::fuzzy_floor(config.min_similarity);
    let personal_nodes = personal.preorder();
    assert_eq!(
        resolved.len(),
        personal_nodes.len(),
        "one resolved query per personal node, in pre-order"
    );
    let mut set = CandidateSet::new(personal_nodes.clone());
    for (&pnode, presolved) in personal_nodes.iter().zip(resolved) {
        let pdata = personal.node(pnode).expect("preorder yields valid ids");
        let pfeatures = store.query_features(&pdata.name);
        for rid in index_candidates_filtered(
            index,
            &pdata.name,
            presolved,
            min_overlap,
            window,
            candidates,
        ) {
            let rfeatures = store.features_of(rid).expect("index ids are valid");
            let sim = fuzzy_features(&pfeatures, rfeatures, scratch);
            if sim >= config.min_similarity && sim > 0.0 {
                set.push(MappingElement::new(pnode, rid, sim));
            }
        }
    }
    finish(set, personal_nodes, config)
}

/// Shared tail of the `match_elements*` entry points: sort per-node lists and apply
/// the optional per-node candidate cap.
fn finish(
    mut set: CandidateSet,
    personal_nodes: Vec<xsm_schema::NodeId>,
    config: &ElementMatchConfig,
) -> CandidateSet {
    set.sort();
    if let Some(cap) = config.max_candidates_per_node {
        let mut capped = CandidateSet::new(personal_nodes);
        for &pnode in capped.personal_nodes().to_vec().iter() {
            for m in set.candidates_for(pnode).iter().take(cap) {
                capped.push(*m);
            }
        }
        capped.sort();
        return capped;
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::{paper_personal_schema, paper_repository_fragment};
    use xsm_schema::XsdType;

    fn fig1_repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![paper_repository_fragment()])
    }

    #[test]
    fn name_matcher_is_the_fuzzy_kernel() {
        let m = NameElementMatcher;
        let a = SchemaNode::element("author");
        let b = SchemaNode::element("authorName");
        assert_eq!(
            m.compare(&a, &b),
            compare_string_fuzzy("author", "authorName")
        );
        assert_eq!(m.name(), "name(fuzzy)");
    }

    #[test]
    fn datatype_matcher_neutral_without_types() {
        let m = DatatypeElementMatcher;
        let untyped = SchemaNode::element("x");
        let typed = SchemaNode::element("y").with_datatype(XsdType::Int);
        assert_eq!(m.compare(&untyped, &typed), 0.5);
        let typed2 = SchemaNode::element("z").with_datatype(XsdType::Long);
        assert_eq!(m.compare(&typed, &typed2), 0.9);
    }

    #[test]
    fn synonym_matcher_overrides_string_distance() {
        let m = SynonymElementMatcher::builtin();
        let a = SchemaNode::element("email");
        let b = SchemaNode::element("mail");
        assert_eq!(m.compare(&a, &b), 1.0);
        // Unknown pair falls back to fuzzy.
        let c = SchemaNode::element("shelf");
        assert_eq!(m.compare(&a, &c), compare_string_fuzzy("email", "shelf"));
    }

    #[test]
    fn composite_matcher_combines() {
        let m = CompositeElementMatcher::coma_like();
        let a = SchemaNode::element("email").with_datatype(XsdType::String);
        let b = SchemaNode::element("mail").with_datatype(XsdType::String);
        let s = m.compare(&a, &b);
        // Name fuzzy(email,mail)=~0.8 * 0.6 + synonym 1.0*0.25 + type 1.0*0.15.
        assert!(s > 0.75 && s <= 1.0, "{s}");
        assert_eq!(m.name(), "composite");
    }

    #[test]
    fn kernel_name_matcher_wraps_any_kernel() {
        let m = KernelNameMatcher::new(xsm_similarity::TokenSetSimilarity);
        let a = SchemaNode::element("firstName");
        let b = SchemaNode::element("name_first");
        assert_eq!(m.compare(&a, &b), 1.0);
    }

    #[test]
    fn match_elements_on_fig1() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let set = match_elements(
            &personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default(),
        );
        // Personal node "book" must find repository node "book", "title" finds "title",
        // "author" finds "authorName".
        let book = personal.find_by_name("book").unwrap();
        let title = personal.find_by_name("title").unwrap();
        let author = personal.find_by_name("author").unwrap();
        let names_for = |n| {
            set.candidates_for(n)
                .iter()
                .map(|m| repo.name_of(m.repo).to_string())
                .collect::<Vec<_>>()
        };
        assert!(names_for(book).contains(&"book".to_string()));
        assert!(names_for(title).contains(&"title".to_string()));
        assert!(names_for(author).contains(&"authorName".to_string()));
        assert!(set.is_useful());
        // Exact matches rank first.
        assert_eq!(repo.name_of(set.candidates_for(title)[0].repo), "title");
    }

    #[test]
    fn floor_filters_weak_pairs() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let lenient = match_elements(
            &personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.1),
        );
        let strict = match_elements(
            &personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.9),
        );
        assert!(lenient.total_candidates() > strict.total_candidates());
        assert!(strict.iter().all(|m| m.similarity >= 0.9));
    }

    #[test]
    fn candidate_cap_limits_per_node() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let capped = match_elements(
            &personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default()
                .with_min_similarity(0.0)
                .with_max_candidates(2),
        );
        for &n in capped.personal_nodes() {
            assert!(capped.candidates_for(n).len() <= 2);
        }
    }

    #[test]
    fn indexed_matching_agrees_with_exhaustive_on_found_pairs() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let index = NameIndex::build(&repo);
        let config = ElementMatchConfig::default().with_min_similarity(0.5);
        let exhaustive = match_elements(&personal, &repo, &NameElementMatcher, &config);
        let indexed =
            match_elements_with_index(&personal, &repo, &index, &NameElementMatcher, &config, 0.3);
        // Index pruning is a subset of the exhaustive scan with identical scores.
        assert!(indexed.total_candidates() <= exhaustive.total_candidates());
        for m in indexed.iter() {
            assert!(exhaustive
                .candidates_for(m.personal)
                .iter()
                .any(|e| e.repo == m.repo && e.similarity == m.similarity));
        }
        // The high-similarity pairs survive the pruning.
        let title = personal.find_by_name("title").unwrap();
        assert_eq!(repo.name_of(indexed.candidates_for(title)[0].repo), "title");
    }

    #[test]
    fn cached_matcher_shares_scores_across_calls() {
        let cache = Arc::new(SimilarityCache::new());
        let m = CachedElementMatcher::new(NameElementMatcher, Arc::clone(&cache));
        let a = SchemaNode::element("author");
        let b = SchemaNode::element("authorName");
        let direct = NameElementMatcher.compare(&a, &b);
        assert_eq!(m.compare(&a, &b), direct);
        assert_eq!(m.compare(&a, &b), direct);
        assert_eq!(m.cache().stats(), (1, 1));
        assert_eq!(m.name(), "cached");
    }

    /// Byte-level equality of two candidate sets: same nodes, same pairs, same
    /// similarity bits, same order.
    fn assert_sets_identical(a: &CandidateSet, b: &CandidateSet) {
        assert_eq!(a.personal_nodes(), b.personal_nodes());
        for &n in a.personal_nodes() {
            let (ca, cb) = (a.candidates_for(n), b.candidates_for(n));
            assert_eq!(ca.len(), cb.len(), "candidate count for {n:?}");
            for (x, y) in ca.iter().zip(cb) {
                assert_eq!(x.repo, y.repo);
                assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
            }
        }
    }

    #[test]
    fn feature_path_is_byte_identical_to_string_path() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let index = NameIndex::build(&repo);
        let mut scratch = SimScratch::default();
        let mut candidates = CandidateScratch::default();
        for floor in [0.0, 0.4, 0.8] {
            let config = ElementMatchConfig::default().with_min_similarity(floor);
            let strings = match_elements(&personal, &repo, &NameElementMatcher, &config);
            let features =
                match_elements_features(&personal, index.features(), &config, &mut scratch);
            assert_sets_identical(&strings, &features);

            let strings_idx = match_elements_with_index(
                &personal,
                &repo,
                &index,
                &NameElementMatcher,
                &config,
                0.3,
            );
            let features_idx = match_elements_with_index_features(
                &personal,
                &index,
                &config,
                0.3,
                &mut scratch,
                &mut candidates,
            );
            assert_sets_identical(&strings_idx, &features_idx);
        }
    }

    #[test]
    fn feature_path_respects_candidate_cap() {
        let personal = paper_personal_schema();
        let repo = fig1_repo();
        let index = NameIndex::build(&repo);
        let mut scratch = SimScratch::default();
        let config = ElementMatchConfig::default()
            .with_min_similarity(0.0)
            .with_max_candidates(2);
        let capped = match_elements_features(&personal, index.features(), &config, &mut scratch);
        for &n in capped.personal_nodes() {
            assert!(capped.candidates_for(n).len() <= 2);
        }
        let reference = match_elements(&personal, &repo, &NameElementMatcher, &config);
        assert_sets_identical(&reference, &capped);
    }

    #[test]
    fn config_builders_clamp() {
        let c = ElementMatchConfig::default().with_min_similarity(9.0);
        assert_eq!(c.min_similarity, 1.0);
        let c = ElementMatchConfig::default().with_min_similarity(-2.0);
        assert_eq!(c.min_similarity, 0.0);
    }
}
