//! A* (best-first) mapping generator — the strategy the paper attributes to LSD.
//!
//! Partial mappings are kept in a max-priority queue ordered by the admissible upper
//! bound of their best completion (the same bound B&B uses, so the heuristic is
//! admissible and the first complete mapping popped is optimal). The search keeps
//! popping until the queue's best bound falls below δ, at which point every remaining
//! mapping with `Δ ≥ δ` has already been emitted — so, like B&B, A* is exact for the
//! "all mappings above δ" problem, it merely explores in a different order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::candidates::CandidateSet;
use crate::counters::GeneratorCounters;
use crate::generator::{sort_mappings, GenerationOutcome, MappingGenerator};
use crate::mapping::SchemaMapping;
use crate::objective::Objective;
use crate::problem::MatchingProblem;
use xsm_repo::SchemaRepository;

/// A* generator with a safety cap on queue pops.
#[derive(Debug, Clone, Copy)]
pub struct AStarGenerator {
    /// Maximum number of queue expansions per single-tree scope.
    pub max_expansions: u64,
}

impl Default for AStarGenerator {
    fn default() -> Self {
        AStarGenerator {
            max_expansions: u64::MAX,
        }
    }
}

impl AStarGenerator {
    /// Unbounded A* generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A* generator that stops after `cap` expansions.
    pub fn with_cap(cap: u64) -> Self {
        AStarGenerator {
            max_expansions: cap,
        }
    }
}

/// Queue entry: partial mapping plus its bound and the next level to expand.
struct Entry {
    bound: f64,
    depth: usize,
    mapping: SchemaMapping,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on bound; deeper (more complete) first on ties for faster goal pops.
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

impl MappingGenerator for AStarGenerator {
    fn generate_single_tree(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome {
        let start = Instant::now();
        let mut counters = GeneratorCounters {
            search_space: scope.search_space_size(),
            ..Default::default()
        };
        let mut mappings = Vec::new();
        let trees = scope.trees();
        let (Some(&tree_id), true) = (trees.first(), scope.is_useful()) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let Some(labeling) = repo.labeling(tree_id) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let objective = Objective::for_problem(problem);

        let mut order: Vec<usize> = (0..scope.node_count()).collect();
        order.sort_by_key(|&i| scope.candidates_at(i).len());

        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        queue.push(Entry {
            bound: 1.0,
            depth: 0,
            mapping: SchemaMapping::new(vec![]),
        });
        let mut expansions = 0u64;
        while let Some(entry) = queue.pop() {
            // Once the best remaining bound is below δ nothing else can qualify.
            if entry.bound + 1e-12 < problem.threshold {
                break;
            }
            if entry.depth == order.len() {
                let score = objective.delta(&entry.mapping, labeling);
                counters.complete_mappings += 1;
                if score >= problem.threshold {
                    counters.retained_mappings += 1;
                    mappings.push(SchemaMapping::with_score(
                        entry.mapping.pairs().to_vec(),
                        score,
                    ));
                }
                continue;
            }
            expansions += 1;
            if expansions > self.max_expansions {
                break;
            }
            let node_index = order[entry.depth];
            for candidate in scope.candidates_at(node_index) {
                if entry.mapping.repo_nodes().contains(&candidate.repo) {
                    continue;
                }
                let mut pairs = entry.mapping.pairs().to_vec();
                pairs.push(*candidate);
                let extended = SchemaMapping::new(pairs);
                counters.partial_mappings += 1;
                let bound = objective.upper_bound(&extended, labeling, scope);
                if bound + 1e-12 < problem.threshold {
                    counters.pruned_branches += 1;
                    continue;
                }
                queue.push(Entry {
                    bound,
                    depth: entry.depth + 1,
                    mapping: extended,
                });
            }
        }
        counters.elapsed = start.elapsed();
        sort_mappings(&mut mappings);
        GenerationOutcome { mappings, counters }
    }

    fn name(&self) -> &'static str {
        "a-star"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use crate::generator::branch_and_bound::BranchAndBoundGenerator;
    use xsm_schema::tree::paper_repository_fragment;

    fn setup(threshold: f64) -> (MatchingProblem, SchemaRepository, CandidateSet) {
        let problem = MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            crate::objective::ObjectiveConfig::default(),
            threshold,
        );
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.2),
        );
        (problem, repo, scope)
    }

    #[test]
    fn astar_matches_branch_and_bound_results() {
        for threshold in [0.6, 0.75, 0.9] {
            let (problem, repo, scope) = setup(threshold);
            let astar = AStarGenerator::new().generate(&problem, &repo, &scope);
            let bb = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
            assert_eq!(astar.mappings.len(), bb.mappings.len(), "δ = {threshold}");
            for (a, b) in astar.mappings.iter().zip(bb.mappings.iter()) {
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn first_emitted_mapping_is_optimal() {
        let (problem, repo, scope) = setup(0.5);
        let astar = AStarGenerator::new().generate(&problem, &repo, &scope);
        assert!(!astar.mappings.is_empty());
        let best = astar.mappings[0].score;
        assert!(astar.mappings.iter().all(|m| m.score <= best + 1e-12));
    }

    #[test]
    fn expansion_cap_limits_work() {
        let (problem, repo, scope) = setup(0.0);
        let capped = AStarGenerator::with_cap(5).generate(&problem, &repo, &scope);
        let full = AStarGenerator::new().generate(&problem, &repo, &scope);
        assert!(capped.counters.partial_mappings <= full.counters.partial_mappings);
    }

    #[test]
    fn high_threshold_terminates_early() {
        let (problem, repo, scope) = setup(0.99);
        let outcome = AStarGenerator::new().generate(&problem, &repo, &scope);
        // Nothing in Fig. 1 reaches 0.99 (author/authorName is not exact), and the
        // queue should be cut off quickly.
        assert!(outcome.mappings.is_empty());
    }
}
