//! Beam-search mapping generator (the strategy iMap uses, cited by the paper as the
//! standard way existing systems "handle such large search space").
//!
//! The search proceeds level by level over the personal-schema nodes; at each level at
//! most `beam_width` partial mappings survive, ranked by the same admissible upper
//! bound the B&B generator uses. Beam search is *not* exhaustive: it trades
//! completeness for a hard bound on work, which is exactly the contrast the paper
//! draws between heuristic search and its clustering approach.

use std::time::Instant;

use crate::candidates::CandidateSet;
use crate::counters::GeneratorCounters;
use crate::generator::{sort_mappings, GenerationOutcome, MappingGenerator};
use crate::mapping::SchemaMapping;
use crate::objective::Objective;
use crate::problem::MatchingProblem;
use xsm_repo::SchemaRepository;

/// Beam-search generator.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearchGenerator {
    /// Number of partial mappings kept per level.
    pub beam_width: usize,
}

impl Default for BeamSearchGenerator {
    fn default() -> Self {
        BeamSearchGenerator { beam_width: 32 }
    }
}

impl BeamSearchGenerator {
    /// Beam search with the given width (minimum 1).
    pub fn new(beam_width: usize) -> Self {
        BeamSearchGenerator {
            beam_width: beam_width.max(1),
        }
    }
}

impl MappingGenerator for BeamSearchGenerator {
    fn generate_single_tree(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome {
        let start = Instant::now();
        let mut counters = GeneratorCounters {
            search_space: scope.search_space_size(),
            ..Default::default()
        };
        let mut mappings = Vec::new();
        let trees = scope.trees();
        let (Some(&tree_id), true) = (trees.first(), scope.is_useful()) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let Some(labeling) = repo.labeling(tree_id) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let objective = Objective::for_problem(problem);

        // Most-constrained-first level order, like B&B.
        let mut order: Vec<usize> = (0..scope.node_count()).collect();
        order.sort_by_key(|&i| scope.candidates_at(i).len());

        // Each beam entry: (partial mapping, bound).
        let mut beam: Vec<(SchemaMapping, f64)> = vec![(SchemaMapping::new(vec![]), 1.0)];
        for &node_index in &order {
            let mut next: Vec<(SchemaMapping, f64)> = Vec::new();
            for (partial, _) in &beam {
                for candidate in scope.candidates_at(node_index) {
                    if partial.repo_nodes().contains(&candidate.repo) {
                        continue;
                    }
                    let mut pairs = partial.pairs().to_vec();
                    pairs.push(*candidate);
                    let extended = SchemaMapping::new(pairs);
                    counters.partial_mappings += 1;
                    let bound = objective.upper_bound(&extended, labeling, scope);
                    if bound + 1e-12 < problem.threshold {
                        counters.pruned_branches += 1;
                        continue;
                    }
                    next.push((extended, bound));
                }
            }
            next.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            next.truncate(self.beam_width);
            beam = next;
            if beam.is_empty() {
                break;
            }
        }

        for (mapping, _) in beam {
            if mapping.len() != scope.node_count() {
                continue;
            }
            let score = objective.delta(&mapping, labeling);
            counters.complete_mappings += 1;
            if score >= problem.threshold {
                counters.retained_mappings += 1;
                mappings.push(SchemaMapping::with_score(mapping.pairs().to_vec(), score));
            }
        }
        counters.elapsed = start.elapsed();
        sort_mappings(&mut mappings);
        GenerationOutcome { mappings, counters }
    }

    fn name(&self) -> &'static str {
        "beam-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use crate::generator::exhaustive::ExhaustiveGenerator;
    use xsm_schema::tree::paper_repository_fragment;

    fn setup() -> (MatchingProblem, SchemaRepository, CandidateSet) {
        let problem = MatchingProblem::fig1_example();
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.2),
        );
        (problem, repo, scope)
    }

    #[test]
    fn wide_beam_finds_the_best_mapping() {
        let (problem, repo, scope) = setup();
        let beam = BeamSearchGenerator::new(64).generate(&problem, &repo, &scope);
        let exact = ExhaustiveGenerator::new().generate(&problem, &repo, &scope);
        assert!(!beam.mappings.is_empty());
        // The top mapping matches the exact optimum.
        assert!((beam.mappings[0].score - exact.mappings[0].score).abs() < 1e-12);
    }

    #[test]
    fn narrow_beam_does_less_work_and_may_lose_mappings() {
        let (problem, repo, scope) = setup();
        let narrow = BeamSearchGenerator::new(1).generate(&problem, &repo, &scope);
        let wide = BeamSearchGenerator::new(128).generate(&problem, &repo, &scope);
        assert!(narrow.counters.partial_mappings <= wide.counters.partial_mappings);
        assert!(narrow.mappings.len() <= wide.mappings.len());
        // Every retained mapping still satisfies the threshold and validity.
        for m in narrow.mappings.iter().chain(wide.mappings.iter()) {
            assert!(m.score >= problem.threshold);
            assert!(m.is_structurally_valid());
        }
    }

    #[test]
    fn beam_width_is_floored_at_one() {
        let g = BeamSearchGenerator::new(0);
        assert_eq!(g.beam_width, 1);
    }

    #[test]
    fn empty_scope_produces_nothing() {
        let (problem, repo, _) = setup();
        let empty = CandidateSet::new(problem.personal_nodes());
        let outcome = BeamSearchGenerator::default().generate(&problem, &repo, &empty);
        assert!(outcome.mappings.is_empty());
        assert_eq!(outcome.counters.partial_mappings, 0);
    }
}
