//! Schema-mapping generators (step ④ of the paper's architecture).
//!
//! A generator receives a *scope* — a [`CandidateSet`] of mapping elements — and
//! enumerates schema mappings built from it, returning every mapping with
//! `Δ(s,t) ≥ δ` plus the performance counters Tab. 1 reports. Because a schema
//! mapping's images must all come from one repository tree (Def. 2 restricted to the
//! forest model), every generator first splits the scope per tree and then searches
//! each single-tree sub-scope independently.
//!
//! Implementations:
//!
//! * [`branch_and_bound`] — the paper's generator (Kreher & Stinson B&B with the
//!   admissible bound from [`crate::objective::Objective::upper_bound`]),
//! * [`exhaustive`] — naive full enumeration (the yardstick the paper compares B&B
//!   against: "Instead of generating and testing all 11 962 741 mappings, B&B tested
//!   30 times less partial mappings"),
//! * [`beam`] — beam search as used by iMap,
//! * [`astar`] — A* best-first search as used by LSD.

pub mod astar;
pub mod beam;
pub mod branch_and_bound;
pub mod exhaustive;

use crate::candidates::CandidateSet;
use crate::counters::GeneratorCounters;
use crate::mapping::SchemaMapping;
use crate::problem::MatchingProblem;
use xsm_repo::SchemaRepository;

/// The result of one generator run: retained mappings (sorted by descending score) and
/// the counters accumulated while producing them.
#[derive(Debug, Clone, Default)]
pub struct GenerationOutcome {
    /// Mappings with `Δ ≥ δ`, best first.
    pub mappings: Vec<SchemaMapping>,
    /// Search-effort counters.
    pub counters: GeneratorCounters,
}

impl GenerationOutcome {
    /// Merge another outcome into this one, keeping the global score order.
    pub fn absorb(&mut self, other: GenerationOutcome) {
        self.mappings.extend(other.mappings);
        self.counters = self.counters.merge(&other.counters);
        sort_mappings(&mut self.mappings);
    }

    /// The best `n` mappings.
    pub fn top(&self, n: usize) -> &[SchemaMapping] {
        &self.mappings[..n.min(self.mappings.len())]
    }
}

/// Sort mappings by descending score with a deterministic tie-break.
pub fn sort_mappings(mappings: &mut [SchemaMapping]) {
    mappings.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.repo_nodes().cmp(&b.repo_nodes()))
    });
}

/// A schema-mapping generator.
pub trait MappingGenerator: Send + Sync {
    /// Enumerate mappings within a *single-tree* scope. `scope` must contain
    /// candidates from at most one repository tree; [`MappingGenerator::generate`]
    /// handles the general case.
    fn generate_single_tree(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome;

    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Enumerate mappings within an arbitrary scope by splitting it per repository
    /// tree, skipping non-useful sub-scopes ("clusters which cannot deliver schema
    /// mappings"), and merging the results.
    fn generate(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome {
        let mut outcome = GenerationOutcome::default();
        for tree in scope.trees() {
            let sub = scope.restrict_to_tree(tree);
            if !sub.is_useful() {
                continue;
            }
            outcome.absorb(self.generate_single_tree(problem, repo, &sub));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::MappingElement;
    use xsm_schema::{GlobalNodeId, NodeId, TreeId};

    #[test]
    fn outcome_absorb_merges_and_sorts() {
        let m1 = SchemaMapping::with_score(
            vec![MappingElement::new(
                NodeId(0),
                GlobalNodeId::new(TreeId(0), NodeId(1)),
                1.0,
            )],
            0.8,
        );
        let m2 = SchemaMapping::with_score(
            vec![MappingElement::new(
                NodeId(0),
                GlobalNodeId::new(TreeId(1), NodeId(2)),
                1.0,
            )],
            0.9,
        );
        let mut a = GenerationOutcome {
            mappings: vec![m1],
            counters: GeneratorCounters {
                partial_mappings: 3,
                ..Default::default()
            },
        };
        let b = GenerationOutcome {
            mappings: vec![m2],
            counters: GeneratorCounters {
                partial_mappings: 4,
                ..Default::default()
            },
        };
        a.absorb(b);
        assert_eq!(a.mappings.len(), 2);
        assert_eq!(a.counters.partial_mappings, 7);
        assert!(a.mappings[0].score >= a.mappings[1].score);
        assert_eq!(a.top(1).len(), 1);
        assert_eq!(a.top(10).len(), 2);
    }

    #[test]
    fn sort_mappings_is_deterministic_on_ties() {
        let mk = |tree: u32, score: f64| {
            SchemaMapping::with_score(
                vec![MappingElement::new(
                    NodeId(0),
                    GlobalNodeId::new(TreeId(tree), NodeId(0)),
                    1.0,
                )],
                score,
            )
        };
        let mut v1 = vec![mk(2, 0.5), mk(1, 0.5), mk(3, 0.9)];
        let mut v2 = vec![mk(1, 0.5), mk(3, 0.9), mk(2, 0.5)];
        sort_mappings(&mut v1);
        sort_mappings(&mut v2);
        assert_eq!(v1, v2);
        assert_eq!(v1[0].score, 0.9);
    }
}
