//! The Branch & Bound mapping generator — the paper's generator (Sec. 3).
//!
//! "The generator uses an adaptation of the Branch and Bound algorithm … The generator
//! produces all schema mappings for which Δ(s,t) ≥ δ … The generator gains efficiency
//! by using a bounding function for an early detection of mappings for which
//! Δ(s,t) < δ."
//!
//! The search assigns personal-schema nodes one at a time (most-constrained node first,
//! i.e. fewest candidates first), skipping repository nodes that are already used
//! (mappings are "1 to 1"). Every partial assignment created is counted as a *partial
//! mapping* — the efficiency indicator Tab. 1b reports. A branch is cut when the
//! admissible upper bound of its best completion falls below δ.

use std::time::Instant;

use crate::candidates::{CandidateSet, MappingElement};
use crate::counters::GeneratorCounters;
use crate::generator::{sort_mappings, GenerationOutcome, MappingGenerator};
use crate::mapping::SchemaMapping;
use crate::objective::Objective;
use crate::problem::MatchingProblem;
use xsm_repo::SchemaRepository;
use xsm_schema::GlobalNodeId;

/// Branch & Bound generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBoundConfig {
    /// Hard cap on the number of partial mappings to expand per single-tree scope;
    /// protects against pathological scopes. `u64::MAX` means unbounded (the default —
    /// the paper's generator is exhaustive above the threshold).
    pub max_partial_mappings: u64,
    /// When `false`, the bounding function is disabled and the search degenerates to
    /// exhaustive enumeration — used by the ablation bench that reproduces the paper's
    /// "B&B tested 30 times less partial mappings" observation.
    pub use_bounding: bool,
}

impl Default for BranchAndBoundConfig {
    fn default() -> Self {
        BranchAndBoundConfig {
            max_partial_mappings: u64::MAX,
            use_bounding: true,
        }
    }
}

/// The Branch & Bound schema-mapping generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBoundGenerator {
    config: BranchAndBoundConfig,
}

impl BranchAndBoundGenerator {
    /// Generator with default configuration (bounding on, no expansion cap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with an explicit configuration.
    pub fn with_config(config: BranchAndBoundConfig) -> Self {
        BranchAndBoundGenerator { config }
    }
}

impl MappingGenerator for BranchAndBoundGenerator {
    fn generate_single_tree(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome {
        let start = Instant::now();
        let mut counters = GeneratorCounters {
            search_space: scope.search_space_size(),
            ..Default::default()
        };
        let mut mappings = Vec::new();

        let trees = scope.trees();
        debug_assert!(trees.len() <= 1, "single-tree scope expected");
        let Some(&tree_id) = trees.first() else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let Some(labeling) = repo.labeling(tree_id) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        if !scope.is_useful() {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        }

        let objective = Objective::for_problem(problem);
        // Most-constrained-first variable order.
        let mut order: Vec<usize> = (0..scope.node_count()).collect();
        order.sort_by_key(|&i| scope.candidates_at(i).len());

        let mut assignment: Vec<MappingElement> = Vec::with_capacity(scope.node_count());
        let mut used: Vec<GlobalNodeId> = Vec::with_capacity(scope.node_count());
        self.search(
            problem,
            scope,
            labeling,
            &objective,
            &order,
            0,
            &mut assignment,
            &mut used,
            &mut mappings,
            &mut counters,
        );

        counters.elapsed = start.elapsed();
        sort_mappings(&mut mappings);
        GenerationOutcome { mappings, counters }
    }

    fn name(&self) -> &'static str {
        "branch-and-bound"
    }
}

impl BranchAndBoundGenerator {
    #[allow(clippy::too_many_arguments)]
    fn search(
        &self,
        problem: &MatchingProblem,
        scope: &CandidateSet,
        labeling: &xsm_schema::TreeLabeling,
        objective: &Objective,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<MappingElement>,
        used: &mut Vec<GlobalNodeId>,
        out: &mut Vec<SchemaMapping>,
        counters: &mut GeneratorCounters,
    ) {
        if counters.partial_mappings >= self.config.max_partial_mappings {
            return;
        }
        if depth == order.len() {
            // Complete mapping: evaluate Δ and retain if above threshold.
            let mapping = SchemaMapping::new(assignment.clone());
            let score = objective.delta(&mapping, labeling);
            counters.complete_mappings += 1;
            if score >= problem.threshold {
                counters.retained_mappings += 1;
                out.push(SchemaMapping::with_score(assignment.clone(), score));
            }
            return;
        }
        let node_index = order[depth];
        let personal_node = scope.personal_nodes()[node_index];
        for candidate in scope.candidates_at(node_index) {
            if counters.partial_mappings >= self.config.max_partial_mappings {
                return;
            }
            if used.contains(&candidate.repo) {
                continue;
            }
            assignment.push(*candidate);
            used.push(candidate.repo);
            counters.partial_mappings += 1;

            let keep = if self.config.use_bounding {
                let partial = SchemaMapping::new(assignment.clone());
                let bound = objective.upper_bound(&partial, labeling, scope);
                if bound + 1e-12 < problem.threshold {
                    counters.pruned_branches += 1;
                    false
                } else {
                    true
                }
            } else {
                true
            };
            if keep {
                self.search(
                    problem,
                    scope,
                    labeling,
                    objective,
                    order,
                    depth + 1,
                    assignment,
                    used,
                    out,
                    counters,
                );
            }
            assignment.pop();
            used.pop();
            let _ = personal_node; // personal node is implied by the candidate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use crate::generator::exhaustive::ExhaustiveGenerator;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn fig1_setup() -> (MatchingProblem, SchemaRepository, CandidateSet) {
        let problem = MatchingProblem::fig1_example();
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.3),
        );
        (problem, repo, scope)
    }

    #[test]
    fn finds_the_fig1_mapping_as_top_result() {
        let (problem, repo, scope) = fig1_setup();
        let outcome = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
        assert!(!outcome.mappings.is_empty(), "no mapping found");
        let best = &outcome.mappings[0];
        let tree = repo.tree(best.repo_tree().unwrap()).unwrap();
        let p_book = problem.personal.find_by_name("book").unwrap();
        let p_title = problem.personal.find_by_name("title").unwrap();
        let p_author = problem.personal.find_by_name("author").unwrap();
        assert_eq!(tree.name_of(best.image_of(p_book).unwrap().node), "book");
        assert_eq!(tree.name_of(best.image_of(p_title).unwrap().node), "title");
        assert_eq!(
            tree.name_of(best.image_of(p_author).unwrap().node),
            "authorName"
        );
        assert!(best.score >= problem.threshold);
        assert!(best.is_structurally_valid());
    }

    #[test]
    fn agrees_with_exhaustive_enumeration() {
        let (problem, repo, scope) = fig1_setup();
        let bb = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
        let ex = ExhaustiveGenerator::new().generate(&problem, &repo, &scope);
        // Same retained mappings (same count, same scores) — B&B is exact.
        assert_eq!(bb.mappings.len(), ex.mappings.len());
        for (a, b) in bb.mappings.iter().zip(ex.mappings.iter()) {
            assert!((a.score - b.score).abs() < 1e-12);
            assert_eq!(a.repo_nodes(), b.repo_nodes());
        }
        // …with no more partial mappings than exhaustive search.
        assert!(bb.counters.partial_mappings <= ex.counters.partial_mappings);
        assert_eq!(bb.counters.search_space, ex.counters.search_space);
    }

    #[test]
    fn bounding_prunes_with_high_threshold() {
        let (mut problem, repo, scope) = fig1_setup();
        problem.threshold = 0.95;
        let bounded = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
        let unbounded = BranchAndBoundGenerator::with_config(BranchAndBoundConfig {
            use_bounding: false,
            ..Default::default()
        })
        .generate(&problem, &repo, &scope);
        assert_eq!(bounded.mappings.len(), unbounded.mappings.len());
        assert!(bounded.counters.partial_mappings < unbounded.counters.partial_mappings);
        assert!(bounded.counters.pruned_branches > 0);
    }

    #[test]
    fn respects_partial_mapping_cap() {
        let (problem, repo, scope) = fig1_setup();
        let capped = BranchAndBoundGenerator::with_config(BranchAndBoundConfig {
            max_partial_mappings: 3,
            use_bounding: true,
        })
        .generate(&problem, &repo, &scope);
        assert!(capped.counters.partial_mappings <= 3 + scope.node_count() as u64);
    }

    #[test]
    fn empty_and_useless_scopes_produce_nothing() {
        let problem = MatchingProblem::fig1_example();
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let empty = CandidateSet::new(problem.personal_nodes());
        let outcome = BranchAndBoundGenerator::new().generate(&problem, &repo, &empty);
        assert!(outcome.mappings.is_empty());
        assert_eq!(outcome.counters.partial_mappings, 0);
    }

    #[test]
    fn injectivity_is_enforced() {
        // A repository tree with a single strong candidate forces collision: two
        // personal nodes both want the one "name" node, so no complete mapping exists
        // unless a second (weaker) candidate exists and injectivity steers to it.
        let personal = TreeBuilder::new("p")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("name"))
            .build();
        let repo_tree = TreeBuilder::new("r")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("nickname"))
            .build();
        let problem =
            MatchingProblem::new(personal, crate::objective::ObjectiveConfig::default(), 0.0);
        let repo = SchemaRepository::from_trees(vec![repo_tree]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.2),
        );
        let outcome = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
        for m in &outcome.mappings {
            assert!(m.is_structurally_valid(), "duplicate repo node used");
        }
        assert!(!outcome.mappings.is_empty());
    }

    #[test]
    fn all_retained_mappings_meet_threshold_and_are_sorted() {
        let (problem, repo, scope) = fig1_setup();
        let outcome = BranchAndBoundGenerator::new().generate(&problem, &repo, &scope);
        let mut prev = f64::INFINITY;
        for m in &outcome.mappings {
            assert!(m.score >= problem.threshold);
            assert!(m.score <= prev + 1e-12);
            prev = m.score;
            assert!(m.is_complete_for(&problem.personal_nodes()));
        }
        assert_eq!(
            outcome.counters.retained_mappings as usize,
            outcome.mappings.len()
        );
        assert!(outcome.counters.complete_mappings >= outcome.counters.retained_mappings);
    }
}
