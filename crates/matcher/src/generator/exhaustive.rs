//! Naive exhaustive mapping generator.
//!
//! Enumerates every injective assignment of personal nodes to candidate repository
//! nodes and evaluates Δ on each. This is the yardstick the paper measures B&B against
//! ("Instead of generating and testing all 11962741 mappings, B&B algorithm tested 30
//! times less partial mappings") and the reference implementation the correctness
//! tests of the other generators compare to.

use std::time::Instant;

use crate::candidates::{CandidateSet, MappingElement};
use crate::counters::GeneratorCounters;
use crate::generator::{sort_mappings, GenerationOutcome, MappingGenerator};
use crate::mapping::SchemaMapping;
use crate::objective::Objective;
use crate::problem::MatchingProblem;
use xsm_repo::SchemaRepository;
use xsm_schema::GlobalNodeId;

/// Exhaustive generator with an optional safety cap on expansions.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveGenerator {
    /// Stop after this many partial mappings (protection for huge scopes).
    pub max_partial_mappings: u64,
}

impl Default for ExhaustiveGenerator {
    fn default() -> Self {
        ExhaustiveGenerator {
            max_partial_mappings: u64::MAX,
        }
    }
}

impl ExhaustiveGenerator {
    /// Unbounded exhaustive generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exhaustive generator that gives up after `cap` partial mappings.
    pub fn with_cap(cap: u64) -> Self {
        ExhaustiveGenerator {
            max_partial_mappings: cap,
        }
    }
}

impl MappingGenerator for ExhaustiveGenerator {
    fn generate_single_tree(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        scope: &CandidateSet,
    ) -> GenerationOutcome {
        let start = Instant::now();
        let mut counters = GeneratorCounters {
            search_space: scope.search_space_size(),
            ..Default::default()
        };
        let mut mappings = Vec::new();
        let trees = scope.trees();
        let (Some(&tree_id), true) = (trees.first(), scope.is_useful()) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let Some(labeling) = repo.labeling(tree_id) else {
            counters.elapsed = start.elapsed();
            return GenerationOutcome { mappings, counters };
        };
        let objective = Objective::for_problem(problem);
        let order: Vec<usize> = (0..scope.node_count()).collect();
        let mut assignment = Vec::with_capacity(order.len());
        let mut used = Vec::with_capacity(order.len());
        self.enumerate(
            problem,
            scope,
            labeling,
            &objective,
            &order,
            0,
            &mut assignment,
            &mut used,
            &mut mappings,
            &mut counters,
        );
        counters.elapsed = start.elapsed();
        sort_mappings(&mut mappings);
        GenerationOutcome { mappings, counters }
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

impl ExhaustiveGenerator {
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        problem: &MatchingProblem,
        scope: &CandidateSet,
        labeling: &xsm_schema::TreeLabeling,
        objective: &Objective,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<MappingElement>,
        used: &mut Vec<GlobalNodeId>,
        out: &mut Vec<SchemaMapping>,
        counters: &mut GeneratorCounters,
    ) {
        if counters.partial_mappings >= self.max_partial_mappings {
            return;
        }
        if depth == order.len() {
            let mapping = SchemaMapping::new(assignment.clone());
            let score = objective.delta(&mapping, labeling);
            counters.complete_mappings += 1;
            if score >= problem.threshold {
                counters.retained_mappings += 1;
                out.push(SchemaMapping::with_score(assignment.clone(), score));
            }
            return;
        }
        for candidate in scope.candidates_at(order[depth]) {
            if counters.partial_mappings >= self.max_partial_mappings {
                return;
            }
            if used.contains(&candidate.repo) {
                continue;
            }
            assignment.push(*candidate);
            used.push(candidate.repo);
            counters.partial_mappings += 1;
            self.enumerate(
                problem,
                scope,
                labeling,
                objective,
                order,
                depth + 1,
                assignment,
                used,
                out,
                counters,
            );
            assignment.pop();
            used.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use xsm_schema::tree::paper_repository_fragment;

    #[test]
    fn enumerates_all_complete_assignments() {
        let problem = MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            crate::objective::ObjectiveConfig::default(),
            0.0, // keep everything
        );
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.0),
        );
        let outcome = ExhaustiveGenerator::new().generate(&problem, &repo, &scope);
        // The search space is the product of the per-node candidate counts (pairs with
        // zero similarity are excluded by the element matcher, so it is below 7³).
        let expected_space: u128 = problem
            .personal_nodes()
            .iter()
            .map(|&n| scope.candidates_for(n).len() as u128)
            .product();
        assert_eq!(outcome.counters.search_space, expected_space);
        assert!(expected_space > 0);
        // With threshold 0 every complete injective assignment is retained.
        assert_eq!(
            outcome.counters.complete_mappings,
            outcome.counters.retained_mappings
        );
        assert_eq!(
            outcome.mappings.len() as u64,
            outcome.counters.complete_mappings
        );
        assert!(outcome.counters.complete_mappings > 0);
        // Exhaustive search expands at least as many partial mappings as it completes
        // and never more than the search space allows.
        assert!(outcome.counters.partial_mappings >= outcome.counters.complete_mappings);
        // Results are sorted best-first.
        assert!(outcome.mappings[0].score >= outcome.mappings[1].score);
    }

    #[test]
    fn cap_stops_early() {
        let problem = MatchingProblem::fig1_example();
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.0),
        );
        let outcome = ExhaustiveGenerator::with_cap(10).generate(&problem, &repo, &scope);
        assert!(outcome.counters.partial_mappings <= 10 + problem.personal_size() as u64);
    }

    #[test]
    fn threshold_filters_results() {
        let problem = MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            crate::objective::ObjectiveConfig::default(),
            0.9,
        );
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let scope = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.0),
        );
        let outcome = ExhaustiveGenerator::new().generate(&problem, &repo, &scope);
        assert!(outcome.mappings.iter().all(|m| m.score >= 0.9));
        assert!(outcome.counters.retained_mappings < outcome.counters.complete_mappings);
    }
}
