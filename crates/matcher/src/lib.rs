//! # xsm-matcher — the Bellflower schema matcher (non-clustered baseline)
//!
//! This crate implements the classic schema-matching architecture of the paper's
//! Fig. 2, i.e. everything *except* the clusterer (which lives in `xsm-core`):
//!
//! 1. **Element matching** ([`element`]): every personal-schema element is compared to
//!    every repository element with one or more [`element::ElementMatcher`]s; pairs
//!    whose combined similarity reaches the configured floor become *mapping elements*
//!    ([`candidates::MappingElement`], grouped per personal node in
//!    [`candidates::CandidateSet`]).
//! 2. **Objective function** ([`objective`]): `Δ(s,t) = α·Δ_sim + (1−α)·Δ_path`
//!    (Eq. 1–3 of the paper), evaluated over complete and partial schema mappings.
//! 3. **Schema-mapping generation** ([`generator`]): enumerate combinations of mapping
//!    elements into [`mapping::SchemaMapping`]s and keep those with `Δ ≥ δ`. The
//!    paper's generator is Branch & Bound
//!    ([`generator::branch_and_bound::BranchAndBoundGenerator`]); exhaustive, beam
//!    (iMap-style) and A* (LSD-style) generators are provided as baselines.
//! 4. **Counters** ([`counters`]): the search-space size and partial-mapping counts
//!    that Tab. 1 of the paper reports.
//!
//! The crate is scope-agnostic: the same generator runs on a whole repository tree
//! (the paper's non-clustered "tree clusters" baseline) or on a cluster produced by
//! `xsm-core` — a scope is just a [`candidates::CandidateSet`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod counters;
pub mod element;
pub mod generator;
pub mod mapping;
pub mod objective;
pub mod problem;

pub use candidates::{CandidateSet, MappingElement};
pub use counters::GeneratorCounters;
pub use element::{ElementMatchConfig, ElementMatcher, NameElementMatcher};
pub use generator::branch_and_bound::BranchAndBoundGenerator;
pub use generator::{GenerationOutcome, MappingGenerator};
pub use mapping::SchemaMapping;
pub use objective::{Objective, ObjectiveConfig};
pub use problem::MatchingProblem;
