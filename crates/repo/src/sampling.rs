//! Sub-repository sampling.
//!
//! "A repository of such size proved to be too big for our experimental framework, and
//! we built several smaller repositories with sizes from 2500 to 10200 elements, by
//! randomly selecting schemas from the collection." This module reproduces that step:
//! given a (large) repository, draw a random subset of whole trees until a target
//! element count is reached.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::repository::SchemaRepository;

/// Randomly select whole trees from `source` until the sampled repository holds at
/// least `target_elements` nodes (or every tree has been taken). Selection order is
/// a seeded shuffle, so equal seeds give equal samples.
pub fn sample_by_elements(
    source: &SchemaRepository,
    target_elements: usize,
    seed: u64,
) -> SchemaRepository {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..source.tree_count()).collect();
    order.shuffle(&mut rng);
    let mut trees = Vec::new();
    let mut total = 0usize;
    for idx in order {
        if total >= target_elements {
            break;
        }
        let tree = source
            .tree(xsm_schema::TreeId(idx as u32))
            .expect("index within tree_count")
            .clone();
        total += tree.len();
        trees.push(tree);
    }
    SchemaRepository::from_trees(trees)
}

/// Select a fixed number of trees at random.
pub fn sample_by_trees(
    source: &SchemaRepository,
    tree_count: usize,
    seed: u64,
) -> SchemaRepository {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..source.tree_count()).collect();
    order.shuffle(&mut rng);
    let trees = order
        .into_iter()
        .take(tree_count)
        .map(|idx| {
            source
                .tree(xsm_schema::TreeId(idx as u32))
                .expect("index within tree_count")
                .clone()
        })
        .collect();
    SchemaRepository::from_trees(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, RepositoryGenerator};

    fn base_repo() -> SchemaRepository {
        RepositoryGenerator::new(GeneratorConfig::small(17).with_target_elements(2000)).generate()
    }

    #[test]
    fn sample_by_elements_hits_target() {
        let source = base_repo();
        let sample = sample_by_elements(&source, 500, 3);
        assert!(sample.total_nodes() >= 500);
        assert!(sample.tree_count() < source.tree_count());
        // Overshoot bounded by one tree.
        let max_tree = source.trees().map(|(_, t)| t.len()).max().unwrap_or(0);
        assert!(sample.total_nodes() <= 500 + max_tree);
    }

    #[test]
    fn sample_larger_than_source_takes_everything() {
        let source = base_repo();
        let sample = sample_by_elements(&source, source.total_nodes() * 2, 3);
        assert_eq!(sample.tree_count(), source.tree_count());
        assert_eq!(sample.total_nodes(), source.total_nodes());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let source = base_repo();
        let a = sample_by_elements(&source, 700, 9);
        let b = sample_by_elements(&source, 700, 9);
        let c = sample_by_elements(&source, 700, 10);
        assert_eq!(a.total_nodes(), b.total_nodes());
        assert_eq!(a.tree_count(), b.tree_count());
        let names_a: Vec<String> = a.trees().map(|(_, t)| t.name().to_string()).collect();
        let names_b: Vec<String> = b.trees().map(|(_, t)| t.name().to_string()).collect();
        assert_eq!(names_a, names_b);
        // Different seed very likely picks a different set of trees.
        let names_c: Vec<String> = c.trees().map(|(_, t)| t.name().to_string()).collect();
        assert_ne!(names_a, names_c);
    }

    #[test]
    fn sample_by_trees_takes_exact_count() {
        let source = base_repo();
        let sample = sample_by_trees(&source, 5, 1);
        assert_eq!(sample.tree_count(), 5);
        let all = sample_by_trees(&source, source.tree_count() + 10, 1);
        assert_eq!(all.tree_count(), source.tree_count());
    }

    #[test]
    fn sampled_trees_have_working_labelings() {
        let source = base_repo();
        let sample = sample_by_trees(&source, 3, 8);
        for (tid, tree) in sample.trees() {
            let root = tree.root().unwrap();
            for nid in tree.node_ids() {
                let d = sample
                    .distance(
                        xsm_schema::GlobalNodeId::new(tid, root),
                        xsm_schema::GlobalNodeId::new(tid, nid),
                    )
                    .unwrap();
                assert_eq!(d, tree.depth(nid));
            }
        }
    }
}
