//! Partitioning a repository's forest across shards.
//!
//! A repository that outgrows one host is split **by tree**: every schema mapping
//! lives entirely inside one tree (Def. 2), and since PR 4 the clustering control
//! loop is tree-local too, so a tree is the natural unit of placement — a query
//! answered by the union of per-shard repositories is exactly the query answered by
//! the whole repository, shard boundaries invisible.
//!
//! Two deterministic placements are provided:
//!
//! * [`ShardPlacement::Contiguous`] — consecutive `TreeId` ranges, balanced by node
//!   count (greedy bin close). Keeps related trees (generators emit similar trees
//!   with nearby ids) on one shard and makes shard membership trivially explainable.
//! * [`ShardPlacement::TreeHash`] — an FNV-1a hash of the tree's root-element name
//!   and node count picks the shard. Placement is stable under appending new trees
//!   to the repository (a tree's shard never depends on how many trees follow it),
//!   at the price of scattering ranges.
//!
//! Within every shard, trees keep their **relative order** (ascending global
//! `TreeId`). That monotonicity is load-bearing: shard-local `GlobalNodeId`s map
//! back to global ids through [`RepositoryPartition::to_global`] without disturbing
//! any tie-break that sorts by id, so a sharded serving layer can merge per-shard
//! answers and stay byte-identical to the unsharded engine.

use serde::{Deserialize, Serialize};
use xsm_schema::{GlobalNodeId, TreeId};

use crate::repository::SchemaRepository;

/// How [`RepositoryPartition::build`] assigns trees to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ShardPlacement {
    /// Consecutive `TreeId` ranges, balanced by total node count.
    #[default]
    Contiguous,
    /// Deterministic FNV-1a hash of (root name, node count) modulo the shard count.
    TreeHash,
}

/// The result of partitioning one repository into `n` shard repositories.
///
/// Shard repositories renumber their trees densely from 0 (a [`SchemaRepository`]
/// stores trees in a `Vec`); `tree_maps` records, per shard, the global `TreeId`
/// each local id came from, in ascending global order.
#[derive(Debug, Clone)]
pub struct RepositoryPartition {
    shards: Vec<SchemaRepository>,
    tree_maps: Vec<Vec<TreeId>>,
    placement: ShardPlacement,
}

impl RepositoryPartition {
    /// Partition `repo` into `shard_count >= 1` shard repositories.
    ///
    /// Every tree lands on exactly one shard; shards may be empty when the forest
    /// has fewer trees than shards. The assignment is a pure function of the
    /// repository content, the shard count and the placement — two hosts
    /// partitioning the same repository agree without coordination.
    pub fn build(repo: &SchemaRepository, shard_count: usize, placement: ShardPlacement) -> Self {
        assert!(shard_count >= 1, "shard_count must be at least 1");
        let assignment = match placement {
            ShardPlacement::Contiguous => contiguous_assignment(repo, shard_count),
            ShardPlacement::TreeHash => {
                let assignment = hash_assignment(repo, shard_count);
                // Append-stability is load-bearing for incremental ingest: a
                // tree's shard must be a pure function of the tree itself —
                // never of its id or of how many trees surround it — so that
                // appending can route new trees without moving old ones.
                debug_assert!(
                    repo.trees()
                        .all(|(tid, tree)| assignment[tid.index()]
                            == tree_hash_shard(tree, shard_count)),
                    "TreeHash placement must depend on the tree alone"
                );
                assignment
            }
        };
        let mut trees: Vec<Vec<_>> = vec![Vec::new(); shard_count];
        let mut tree_maps: Vec<Vec<TreeId>> = vec![Vec::new(); shard_count];
        for (tid, tree) in repo.trees() {
            let shard = assignment[tid.index()];
            trees[shard].push(tree.clone());
            tree_maps[shard].push(tid);
        }
        let shards = trees
            .into_iter()
            .map(SchemaRepository::from_trees)
            .collect();
        RepositoryPartition {
            shards,
            tree_maps,
            placement,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement strategy the partition was built with.
    pub fn placement(&self) -> ShardPlacement {
        self.placement
    }

    /// The shard repositories, in shard order.
    pub fn shards(&self) -> &[SchemaRepository] {
        &self.shards
    }

    /// Consume the partition, yielding the shard repositories and their
    /// local-to-global tree maps (same indexing as [`RepositoryPartition::shards`]).
    pub fn into_parts(self) -> (Vec<SchemaRepository>, Vec<Vec<TreeId>>) {
        (self.shards, self.tree_maps)
    }

    /// The global `TreeId` of shard `shard`'s local tree `local`, or `None` when
    /// either index is out of range.
    pub fn global_tree(&self, shard: usize, local: TreeId) -> Option<TreeId> {
        self.tree_maps.get(shard)?.get(local.index()).copied()
    }

    /// Translate a shard-local node id back to the global repository id.
    pub fn to_global(&self, shard: usize, id: GlobalNodeId) -> Option<GlobalNodeId> {
        Some(GlobalNodeId::new(
            self.global_tree(shard, id.tree)?,
            id.node,
        ))
    }

    /// Which shard holds the given global tree, or `None` for unknown trees.
    pub fn shard_of(&self, tree: TreeId) -> Option<usize> {
        self.tree_maps
            .iter()
            .position(|map| map.binary_search(&tree).is_ok())
    }
}

/// Greedy contiguous ranges balanced by node count: cut to a new shard at each
/// ideal boundary (`(shard+1)/n` of the total nodes), deciding *before* placing a
/// tree — a boundary falling inside a tree cuts in front of it when stopping
/// short lands closer to the ideal than overshooting would (so one large tree at
/// the tail cannot drag the whole forest onto the first shard).
fn contiguous_assignment(repo: &SchemaRepository, shard_count: usize) -> Vec<usize> {
    let total: usize = repo.total_nodes();
    let mut assignment = vec![0usize; repo.tree_count()];
    let mut shard = 0usize;
    let mut filled = 0usize; // nodes placed so far (this shard and all before it)
    let mut trees_in_shard = 0usize;
    for (tid, tree) in repo.trees() {
        // The ideal boundary of shard `shard` is at (shard+1)/n of the total nodes.
        let target = (total * (shard + 1)).div_ceil(shard_count);
        let past_boundary = filled >= target || {
            // The boundary falls inside this tree: cut in front of it when stopping
            // short lands closer to the ideal than overshooting would.
            let with_tree = filled + tree.len();
            with_tree > target && with_tree - target > target - filled
        };
        if trees_in_shard > 0 && shard + 1 < shard_count && past_boundary {
            shard += 1;
            trees_in_shard = 0;
        }
        assignment[tid.index()] = shard;
        filled += tree.len();
        trees_in_shard += 1;
    }
    assignment
}

/// The shard a tree lands on under [`ShardPlacement::TreeHash`]: FNV-1a over
/// the tree's root-element name bytes, mixed with its node count, modulo the
/// shard count.
///
/// This is deliberately a free function of the **tree alone** — not of its
/// `TreeId`, not of the surrounding forest — which is exactly what makes the
/// placement append-stable: a router ingesting new trees computes their shard
/// with this function and knows no existing tree can move (the partition
/// property suite pins that invariant).
pub fn tree_hash_shard(tree: &xsm_schema::SchemaTree, shard_count: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let root_name = tree.root().map(|r| tree.name_of(r)).unwrap_or("");
    for byte in root_name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= tree.len() as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    (h % shard_count as u64) as usize
}

/// FNV-1a tree-hash placement for a whole forest; see [`tree_hash_shard`].
fn hash_assignment(repo: &SchemaRepository, shard_count: usize) -> Vec<usize> {
    repo.trees()
        .map(|(_, tree)| tree_hash_shard(tree, shard_count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, RepositoryGenerator};
    use xsm_schema::{NodeId, SchemaNode, TreeBuilder};

    fn repo() -> SchemaRepository {
        RepositoryGenerator::new(GeneratorConfig::small(13).with_target_elements(600)).generate()
    }

    fn assert_is_partition(repo: &SchemaRepository, p: &RepositoryPartition) {
        // Every global tree appears on exactly one shard, in ascending order there.
        let mut seen: Vec<TreeId> = Vec::new();
        for (shard_idx, (shard, map)) in p.shards.iter().zip(&p.tree_maps).enumerate() {
            assert_eq!(shard.tree_count(), map.len());
            assert!(map.windows(2).all(|w| w[0] < w[1]), "map not ascending");
            for (local, &global) in map.iter().enumerate() {
                let local_tree = shard.tree(TreeId(local as u32)).unwrap();
                let global_tree = repo.tree(global).unwrap();
                assert_eq!(local_tree.len(), global_tree.len());
                assert_eq!(p.global_tree(shard_idx, TreeId(local as u32)), Some(global));
                assert_eq!(p.shard_of(global), Some(shard_idx));
            }
            seen.extend_from_slice(map);
        }
        seen.sort();
        let expected: Vec<TreeId> = repo.trees().map(|(tid, _)| tid).collect();
        assert_eq!(seen, expected, "trees lost or duplicated");
    }

    #[test]
    fn contiguous_partition_covers_and_balances() {
        let repo = repo();
        for n in [1, 2, 3, 5] {
            let p = RepositoryPartition::build(&repo, n, ShardPlacement::Contiguous);
            assert_eq!(p.shard_count(), n);
            assert_is_partition(&repo, &p);
            // Contiguity: each shard's global trees form one consecutive range.
            for map in &p.tree_maps {
                if let (Some(first), Some(last)) = (map.first(), map.last()) {
                    assert_eq!((last.0 - first.0) as usize, map.len() - 1);
                }
            }
            // Rough balance: no shard exceeds twice the ideal share (the generator's
            // trees are small relative to the repository).
            if n > 1 {
                let ideal = repo.total_nodes() / n;
                for shard in p.shards() {
                    assert!(shard.total_nodes() <= 2 * ideal + 64);
                }
            }
        }
    }

    #[test]
    fn hash_partition_covers_and_is_stable_under_append() {
        let repo = repo();
        let p = RepositoryPartition::build(&repo, 4, ShardPlacement::TreeHash);
        assert_is_partition(&repo, &p);
        assert_eq!(p.placement(), ShardPlacement::TreeHash);

        // Appending a tree never moves an existing tree to a different shard.
        let mut grown = repo.clone();
        grown.add_tree(xsm_schema::tree::paper_repository_fragment());
        let p2 = RepositoryPartition::build(&grown, 4, ShardPlacement::TreeHash);
        for (tid, _) in repo.trees() {
            assert_eq!(p.shard_of(tid), p2.shard_of(tid), "tree {tid} moved");
        }
    }

    #[test]
    fn contiguous_placement_splits_before_a_large_tail_tree() {
        // Node counts [3, 3, 3, 15] over two shards: the boundary (12) falls inside
        // the big tree, and cutting before it ([3,3,3] / [15]) is closer to ideal
        // than taking everything on shard 0. The greedy cut must fire before the
        // tree, not only after the running total passes the target.
        fn chain(len: usize) -> xsm_schema::SchemaTree {
            let mut b = TreeBuilder::new("t").root(SchemaNode::element("root"));
            for i in 1..len {
                b = b.child(SchemaNode::element(format!("n{i}").as_str()));
            }
            b.build()
        }
        let repo = SchemaRepository::from_trees(vec![chain(3), chain(3), chain(3), chain(15)]);
        let p = RepositoryPartition::build(&repo, 2, ShardPlacement::Contiguous);
        assert_is_partition(&repo, &p);
        assert_eq!(p.shard_of(TreeId(3)), Some(1), "large tail tree must cut");
        assert_eq!(p.shards()[0].total_nodes(), 9);
        assert_eq!(p.shards()[1].total_nodes(), 15);
    }

    #[test]
    fn more_shards_than_trees_leaves_empty_shards() {
        let small = SchemaRepository::from_trees(vec![
            xsm_schema::tree::paper_repository_fragment(),
            xsm_schema::tree::paper_personal_schema(),
        ]);
        let p = RepositoryPartition::build(&small, 5, ShardPlacement::Contiguous);
        assert_eq!(p.shard_count(), 5);
        assert_is_partition(&small, &p);
        let non_empty = p.shards().iter().filter(|s| !s.is_empty()).count();
        assert_eq!(non_empty, 2);
    }

    #[test]
    fn single_shard_is_the_whole_repository() {
        let repo = repo();
        for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
            let p = RepositoryPartition::build(&repo, 1, placement);
            assert_eq!(p.shards()[0].tree_count(), repo.tree_count());
            assert_eq!(p.shards()[0].total_nodes(), repo.total_nodes());
            // Identity tree map.
            for (tid, _) in repo.trees() {
                assert_eq!(p.global_tree(0, tid), Some(tid));
            }
        }
    }

    #[test]
    fn to_global_round_trips_node_ids() {
        let repo = repo();
        let p = RepositoryPartition::build(&repo, 3, ShardPlacement::TreeHash);
        for (shard_idx, shard) in p.shards().iter().enumerate() {
            for (local_id, node) in shard.nodes() {
                let global = p.to_global(shard_idx, local_id).unwrap();
                assert_eq!(repo.name_of(global), node.name);
            }
        }
        assert_eq!(
            p.to_global(0, GlobalNodeId::new(TreeId(999), NodeId(0))),
            None
        );
        assert_eq!(p.shard_of(TreeId(999)), None);
    }

    #[test]
    fn empty_repository_partitions_into_empty_shards() {
        let p = RepositoryPartition::build(&SchemaRepository::new(), 3, ShardPlacement::Contiguous);
        assert_eq!(p.shard_count(), 3);
        assert!(p.shards().iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "shard_count must be at least 1")]
    fn zero_shards_panics() {
        RepositoryPartition::build(&SchemaRepository::new(), 0, ShardPlacement::Contiguous);
    }

    proptest::proptest! {
        /// TreeHash placement never remaps an existing tree when trees are
        /// appended — the invariant incremental ingest routes on.
        #[test]
        fn tree_hash_placement_is_append_stable(
            seed in 0u64..1000,
            base_elements in 50usize..300,
            appended in 1usize..8,
            shards in 1usize..6,
        ) {
            let base = RepositoryGenerator::new(
                GeneratorConfig::small(seed).with_target_elements(base_elements),
            )
            .generate();
            let before = RepositoryPartition::build(&base, shards, ShardPlacement::TreeHash);

            let extra = RepositoryGenerator::new(
                GeneratorConfig::small(seed ^ 0x9e37_79b9).with_target_elements(appended * 12),
            )
            .generate();
            let mut grown = base.clone();
            let mut new_ids = Vec::new();
            for (_, tree) in extra.trees().take(appended) {
                new_ids.push(grown.add_tree(tree.clone()));
            }
            let after = RepositoryPartition::build(&grown, shards, ShardPlacement::TreeHash);

            for (tid, tree) in base.trees() {
                proptest::prop_assert_eq!(before.shard_of(tid), after.shard_of(tid));
                // The placement is a pure function of the tree alone.
                proptest::prop_assert_eq!(
                    after.shard_of(tid),
                    Some(tree_hash_shard(tree, shards))
                );
            }
            // New trees land where the free function says they land.
            for tid in new_ids {
                let tree = grown.tree(tid).unwrap();
                proptest::prop_assert_eq!(
                    after.shard_of(tid),
                    Some(tree_hash_shard(tree, shards))
                );
            }
        }
    }
}
