//! Live repositories: incremental ingest and tombstone delete without rebuild.
//!
//! The paper's pipeline assumes a repository built once and queried forever; a
//! serving deployment sees schemas uploaded, revised and retired continuously.
//! [`LiveRepository`] bundles a [`SchemaRepository`] with its [`NameIndex`] (and
//! therefore its [`crate::FeatureStore`]) and keeps the pair **incrementally
//! consistent** under three mutations:
//!
//! * **append** — new trees take the next [`TreeId`]s; the posting arena grows
//!   tail-only runs, the feature store appends columns, and no existing entry
//!   moves (dense node indices are stable for the repository's lifetime),
//! * **delete** — trees are *tombstoned*: their postings stay in the arena but
//!   are subtracted from every live size and filtered out of every candidate
//!   merge, so queries answer as if the tree were never there,
//! * **compact** — once tombstoned weight crosses a threshold, the arena is
//!   rewritten alive-only (LSM-style), reclaiming the dead postings without
//!   renumbering a single dense index.
//!
//! Every *logical* mutation (append batch, delete batch) bumps a monotonically
//! increasing **generation**, recorded per-operation in the [`IngestLog`].
//! Compaction is physical-only and does not bump the generation — it cannot
//! change any answer. The correctness contract, pinned by the
//! `live_equivalence` property suite in the service crate, is that a live
//! repository answers **byte-identically** to a from-scratch rebuild at the
//! same logical content.

use crate::index::NameIndex;
use crate::repository::SchemaRepository;
use xsm_schema::{SchemaTree, TreeId};

/// Why a mutation was rejected. Mutations are **atomic**: a batch that returns
/// an error has changed nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// An append or delete batch was empty — a no-op request is almost always
    /// a caller bug, and accepting it would burn a generation for nothing.
    EmptyBatch,
    /// A delete named a tree the repository has never held.
    UnknownTree(TreeId),
    /// A delete named a tree that is already tombstoned.
    AlreadyDeleted(TreeId),
    /// A delete batch named the same tree twice.
    DuplicateTree(TreeId),
    /// [`LiveRepository::advance_generation`] was asked to move backwards (or
    /// stand still) — generations are strictly monotonic.
    StaleGeneration {
        /// The repository's current generation.
        current: u64,
        /// The non-advancing generation that was requested.
        requested: u64,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::EmptyBatch => write!(f, "empty mutation batch"),
            LiveError::UnknownTree(t) => write!(f, "unknown tree {t}"),
            LiveError::AlreadyDeleted(t) => write!(f, "tree {t} is already deleted"),
            LiveError::DuplicateTree(t) => write!(f, "tree {t} named twice in one batch"),
            LiveError::StaleGeneration { current, requested } => write!(
                f,
                "generation must advance: current {current}, requested {requested}"
            ),
        }
    }
}

impl std::error::Error for LiveError {}

/// One applied mutation, stamped with the generation it produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestRecord {
    /// The repository generation after this operation's batch applied.
    pub generation: u64,
    /// What happened.
    pub op: IngestOp,
}

/// The mutation kinds an [`IngestLog`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOp {
    /// A tree was appended.
    Append {
        /// The id the tree received.
        tree: TreeId,
        /// Number of nodes the tree brought.
        nodes: usize,
    },
    /// A tree was tombstoned.
    Delete {
        /// The tree that died.
        tree: TreeId,
        /// Posting-arena entries the tombstone covered.
        postings_dropped: usize,
    },
    /// The posting arena was compacted (physical-only; same generation as the
    /// preceding logical mutation).
    Compact {
        /// Dead postings reclaimed from the arena.
        postings_reclaimed: usize,
    },
}

/// The ordered history of applied mutations — enough to audit how a live
/// repository reached its current content, and the hook a future replication
/// log would tail.
#[derive(Debug, Clone, Default)]
pub struct IngestLog {
    records: Vec<IngestRecord>,
}

impl IngestLog {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no mutation has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, oldest first.
    pub fn records(&self) -> &[IngestRecord] {
        &self.records
    }

    /// The most recent record.
    pub fn last(&self) -> Option<&IngestRecord> {
        self.records.last()
    }
}

/// A [`SchemaRepository`] + [`NameIndex`] pair that stays consistent under
/// append, tombstone delete and compaction — see the module docs for the
/// mutation contract.
#[derive(Debug)]
pub struct LiveRepository {
    repo: SchemaRepository,
    index: NameIndex,
    generation: u64,
    log: IngestLog,
}

impl LiveRepository {
    /// Build a live repository from an initial forest (index construction
    /// happens here), starting at generation 0 like a cold-built engine.
    pub fn build(repo: SchemaRepository) -> Self {
        let index = NameIndex::build(&repo);
        Self::from_parts(repo, index, 0)
    }

    /// Wrap an already-built repository/index pair (the snapshot-load path; the
    /// snapshot's tombstones must already be applied to `index`).
    pub fn from_parts(repo: SchemaRepository, index: NameIndex, generation: u64) -> Self {
        LiveRepository {
            repo,
            index,
            generation,
            log: IngestLog::default(),
        }
    }

    /// The forest. Tombstoned trees remain physically present (their
    /// [`TreeId`]s stay assigned forever) but contribute nothing to queries.
    pub fn repo(&self) -> &SchemaRepository {
        &self.repo
    }

    /// The name index over the forest, tombstones applied.
    pub fn index(&self) -> &NameIndex {
        &self.index
    }

    /// The current generation: 0 at build, +1 per applied append/delete batch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The ordered mutation history.
    pub fn log(&self) -> &IngestLog {
        &self.log
    }

    /// Append a batch of trees; they receive consecutive [`TreeId`]s starting
    /// at the current tree count, returned in order. One generation bump for
    /// the whole batch. Existing index entries are never touched — appending
    /// is tail-only in the arena, the feature columns and the tree table.
    pub fn append_trees(&mut self, trees: Vec<SchemaTree>) -> Result<Vec<TreeId>, LiveError> {
        if trees.is_empty() {
            return Err(LiveError::EmptyBatch);
        }
        let generation = self.generation + 1;
        let mut ids = Vec::with_capacity(trees.len());
        for tree in trees {
            let tid = TreeId(self.repo.tree_count() as u32);
            let nodes = tree.len();
            self.index.append_tree(tid, &tree);
            let assigned = self.repo.add_tree(tree);
            debug_assert_eq!(assigned, tid, "repository and index must agree on ids");
            self.log.records.push(IngestRecord {
                generation,
                op: IngestOp::Append { tree: tid, nodes },
            });
            ids.push(tid);
        }
        self.generation = generation;
        Ok(ids)
    }

    /// Tombstone a batch of trees; returns the number of posting-arena entries
    /// the tombstones cover. The batch is validated **before** anything is
    /// applied — an unknown, already-dead or duplicated tree rejects the whole
    /// batch with the repository unchanged. One generation bump per batch.
    pub fn delete_trees(&mut self, trees: &[TreeId]) -> Result<usize, LiveError> {
        if trees.is_empty() {
            return Err(LiveError::EmptyBatch);
        }
        for (i, &tid) in trees.iter().enumerate() {
            if tid.index() >= self.repo.tree_count() {
                return Err(LiveError::UnknownTree(tid));
            }
            if self.index.features().is_tree_dead(tid) {
                return Err(LiveError::AlreadyDeleted(tid));
            }
            if trees[..i].contains(&tid) {
                return Err(LiveError::DuplicateTree(tid));
            }
        }
        let generation = self.generation + 1;
        let mut dropped = 0;
        for &tid in trees {
            let postings = self
                .index
                .tombstone_tree(tid)
                .expect("batch was validated above");
            dropped += postings;
            self.log.records.push(IngestRecord {
                generation,
                op: IngestOp::Delete {
                    tree: tid,
                    postings_dropped: postings,
                },
            });
        }
        self.generation = generation;
        Ok(dropped)
    }

    /// Rewrite the posting arena alive-only, reclaiming every tombstoned
    /// posting. Physical-only: answers cannot change, so the generation does
    /// not move and caches keyed on it stay valid.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.index.compact();
        self.log.records.push(IngestRecord {
            generation: self.generation,
            op: IngestOp::Compact {
                postings_reclaimed: reclaimed,
            },
        });
        reclaimed
    }

    /// [`LiveRepository::compact`] iff the dead fraction of the posting arena
    /// has reached `threshold` (a fraction in `0.0..=1.0`; `1.0` effectively
    /// disables compaction, `0.0` compacts whenever anything is dead).
    pub fn maybe_compact(&mut self, threshold: f64) -> Option<usize> {
        if self.index.dead_postings() > 0 && self.index.dead_posting_fraction() >= threshold {
            Some(self.compact())
        } else {
            None
        }
    }

    /// Dead fraction of the posting arena — the compaction trigger input.
    pub fn dead_posting_fraction(&self) -> f64 {
        self.index.dead_posting_fraction()
    }

    /// The tombstoned trees, ascending. Persisted by snapshots and re-applied
    /// on load.
    pub fn tombstoned_trees(&self) -> &[TreeId] {
        self.index.tombstoned_trees()
    }

    /// Nodes that still answer queries (total minus tombstoned).
    pub fn alive_nodes(&self) -> usize {
        self.index.indexed_nodes()
    }

    /// Force the generation forward to `generation` without a content change —
    /// how a sharded router keeps *unmutated* shards in step with mutated ones
    /// so the mixed-generation merge guard keeps holding. Strictly monotonic:
    /// a non-advancing request is [`LiveError::StaleGeneration`].
    pub fn advance_generation(&mut self, generation: u64) -> Result<(), LiveError> {
        if generation <= self.generation {
            return Err(LiveError::StaleGeneration {
                current: self.generation,
                requested: generation,
            });
        }
        self.generation = generation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::CandidateQuery;
    use crate::CandidateScratch;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn tree(name: &str, fields: &[&str]) -> SchemaTree {
        let mut b = TreeBuilder::new(name).root(SchemaNode::element(fields[0]));
        for f in &fields[1..] {
            b = b.child(SchemaNode::element(*f));
        }
        b.build()
    }

    fn seed_repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![
            tree("t0", &["library", "book", "title"]),
            tree("t1", &["person", "name", "email"]),
            tree("t2", &["order", "item", "price"]),
        ])
    }

    /// The logical content of a live repository, rebuilt from scratch: alive
    /// trees keep their ids, tombstoned trees become empty placeholders (same
    /// id, zero nodes), appended trees are plain trees.
    fn rebuilt_oracle(live: &LiveRepository) -> NameIndex {
        let trees: Vec<SchemaTree> = live
            .repo()
            .trees()
            .map(|(tid, t)| {
                if live.index().features().is_tree_dead(tid) {
                    SchemaTree::new(t.name())
                } else {
                    t.clone()
                }
            })
            .collect();
        NameIndex::build(&SchemaRepository::from_trees(trees))
    }

    fn assert_matches_rebuild(live: &LiveRepository, queries: &[&str]) {
        let oracle = rebuilt_oracle(live);
        let mut scratch = CandidateScratch::default();
        assert_eq!(live.index().indexed_nodes(), oracle.indexed_nodes());
        for name in queries {
            assert_eq!(
                live.index().lookup_exact(name),
                oracle.lookup_exact(name),
                "exact lookup diverged for {name:?}"
            );
            let q = CandidateQuery::new(name, 0.5);
            let got = live.index().lookup_candidates(&q, &mut scratch);
            let want = oracle.lookup_candidates(&q, &mut scratch);
            assert_eq!(got, want, "candidates diverged for {name:?}");
            assert_eq!(
                live.index().estimate_candidate_volume(name),
                oracle.estimate_candidate_volume(name),
                "volume estimate diverged for {name:?}"
            );
        }
    }

    const QUERIES: &[&str] = &[
        "library", "book", "title", "person", "name", "email", "order", "item", "price",
        "customer", "status", "nam", "boo",
    ];

    #[test]
    fn append_extends_without_touching_existing_entries() {
        let mut live = LiveRepository::build(seed_repo());
        let before_exact: Vec<_> = live.index().lookup_exact("book").to_vec();
        let ids = live
            .append_trees(vec![tree("t3", &["customer", "name", "status"])])
            .unwrap();
        assert_eq!(ids, vec![TreeId(3)]);
        assert_eq!(live.generation(), 1);
        assert_eq!(live.repo().tree_count(), 4);
        // Existing postings are untouched.
        assert_eq!(live.index().lookup_exact("book"), &before_exact[..]);
        // The new tree is queryable and equals a from-scratch rebuild.
        assert!(!live.index().lookup_exact("customer").is_empty());
        assert_matches_rebuild(&live, QUERIES);
    }

    #[test]
    fn delete_tombstones_and_matches_rebuild() {
        let mut live = LiveRepository::build(seed_repo());
        let dropped = live.delete_trees(&[TreeId(1)]).unwrap();
        assert!(dropped > 0);
        assert_eq!(live.generation(), 1);
        assert_eq!(live.tombstoned_trees(), &[TreeId(1)]);
        assert!(live.index().lookup_exact("person").is_empty());
        assert!(live.dead_posting_fraction() > 0.0);
        assert_matches_rebuild(&live, QUERIES);
    }

    #[test]
    fn interleaved_mutations_with_compaction_match_rebuild() {
        let mut live = LiveRepository::build(seed_repo());
        live.append_trees(vec![
            tree("t3", &["customer", "name", "status"]),
            tree("t4", &["invoice", "total", "price"]),
        ])
        .unwrap();
        live.delete_trees(&[TreeId(0), TreeId(3)]).unwrap();
        assert_matches_rebuild(&live, QUERIES);
        let dead = live.index().dead_postings();
        assert!(dead > 0);
        let reclaimed = live.compact();
        assert_eq!(reclaimed, dead);
        assert_eq!(live.index().dead_postings(), 0);
        assert_matches_rebuild(&live, QUERIES);
        // Mutations keep working after a compaction.
        live.append_trees(vec![tree("t5", &["person", "name"])])
            .unwrap();
        live.delete_trees(&[TreeId(4)]).unwrap();
        assert_matches_rebuild(&live, QUERIES);
        assert_eq!(live.generation(), 4);
    }

    #[test]
    fn maybe_compact_honours_the_threshold() {
        let mut live = LiveRepository::build(seed_repo());
        assert_eq!(live.maybe_compact(0.0), None, "nothing dead yet");
        live.delete_trees(&[TreeId(2)]).unwrap();
        let fraction = live.dead_posting_fraction();
        assert_eq!(live.maybe_compact(fraction + 0.1), None, "below threshold");
        assert!(live.maybe_compact(fraction).is_some(), "at threshold");
        assert_eq!(live.index().dead_postings(), 0);
    }

    #[test]
    fn batches_are_validated_atomically() {
        let mut live = LiveRepository::build(seed_repo());
        assert_eq!(live.append_trees(vec![]), Err(LiveError::EmptyBatch));
        assert_eq!(live.delete_trees(&[]), Err(LiveError::EmptyBatch));
        assert_eq!(
            live.delete_trees(&[TreeId(1), TreeId(9)]),
            Err(LiveError::UnknownTree(TreeId(9)))
        );
        assert_eq!(
            live.delete_trees(&[TreeId(1), TreeId(1)]),
            Err(LiveError::DuplicateTree(TreeId(1)))
        );
        // The failed batches changed nothing.
        assert_eq!(live.generation(), 0);
        assert!(live.tombstoned_trees().is_empty());
        live.delete_trees(&[TreeId(1)]).unwrap();
        assert_eq!(
            live.delete_trees(&[TreeId(1)]),
            Err(LiveError::AlreadyDeleted(TreeId(1)))
        );
        assert_eq!(live.generation(), 1);
    }

    #[test]
    fn generations_are_strictly_monotonic() {
        let mut live = LiveRepository::build(seed_repo());
        live.advance_generation(5).unwrap();
        assert_eq!(live.generation(), 5);
        assert_eq!(
            live.advance_generation(5),
            Err(LiveError::StaleGeneration {
                current: 5,
                requested: 5
            })
        );
        live.append_trees(vec![tree("t3", &["a", "b"])]).unwrap();
        assert_eq!(live.generation(), 6);
    }

    #[test]
    fn the_log_records_every_operation_in_order() {
        let mut live = LiveRepository::build(seed_repo());
        assert!(live.log().is_empty());
        live.append_trees(vec![tree("t3", &["customer"])]).unwrap();
        live.delete_trees(&[TreeId(0)]).unwrap();
        live.compact();
        let records = live.log().records();
        assert_eq!(records.len(), 3);
        assert!(matches!(
            records[0].op,
            IngestOp::Append {
                tree: TreeId(3),
                nodes: 1
            }
        ));
        assert_eq!(records[0].generation, 1);
        assert!(matches!(
            records[1].op,
            IngestOp::Delete {
                tree: TreeId(0),
                ..
            }
        ));
        assert_eq!(records[1].generation, 2);
        assert!(matches!(records[2].op, IngestOp::Compact { .. }));
        assert_eq!(records[2].generation, 2, "compaction is generation-neutral");
        assert_eq!(live.log().last(), Some(&records[2]));
    }
}
