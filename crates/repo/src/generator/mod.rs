//! Synthetic web-schema corpus generator.
//!
//! The paper's repository was crawled from the web (1 700 DTD/XSDs, 178 252 nodes,
//! 3 889 trees). That corpus is not available, so this module generates a synthetic
//! corpus with the same *statistical shape* (DESIGN.md, substitution 1):
//!
//! * a forest of many small-to-medium trees (configurable mean size, skewed
//!   distribution — most web schemas are small, a few are large),
//! * element names drawn from realistic **domain vocabularies** (contacts, library,
//!   commerce, organisation, publications, generic web data) so that a personal schema
//!   like `name / address / email` finds many approximately matching elements spread
//!   over many trees — which is precisely the regime the clustered matcher targets,
//! * name **mutations** (typos, abbreviations, synonyms, compounding with qualifiers,
//!   case-style changes) so that name similarity is graded rather than exact,
//! * optional attribute nodes with datatypes.
//!
//! Everything is driven by a single seed, so experiments are exactly reproducible.

pub mod mutate;
pub mod vocabulary;

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use xsm_schema::{Cardinality, NodeId, SchemaNode, SchemaTree, XsdType};

use crate::repository::SchemaRepository;
use mutate::NameMutator;
use vocabulary::Domain;

/// Configuration of the synthetic repository generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; equal seeds produce byte-identical repositories.
    pub seed: u64,
    /// Stop adding trees once the total node count reaches this value.
    pub target_elements: usize,
    /// Smallest tree size the generator will draw.
    pub min_tree_size: usize,
    /// Largest tree size the generator will draw.
    pub max_tree_size: usize,
    /// Maximum node depth within a tree (root = 0).
    pub max_depth: u32,
    /// Probability that a generated node is an attribute (with a datatype) rather
    /// than an element.
    pub attribute_probability: f64,
    /// Probability that a vocabulary name is mutated (typo, abbreviation, synonym,
    /// compounding) before being used.
    pub mutation_probability: f64,
    /// Probability that a non-root node name is compounded with a domain qualifier
    /// (e.g. `name` → `customerName`).
    pub compound_probability: f64,
    /// Probability that a tree is drawn from the *large-schema* size range instead of
    /// the regular `[min_tree_size, max_tree_size]` range. Web-crawled schema
    /// collections are dominated by small schemas but contain a long tail of large
    /// industrial schemas (hundreds of elements); those large trees are where the
    /// mapping-generation search space explodes and clustering pays off.
    pub large_tree_probability: f64,
    /// Size range `[lo, hi]` of large trees.
    pub large_tree_size: (usize, usize),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            target_elements: 10_000,
            min_tree_size: 8,
            max_tree_size: 120,
            max_depth: 8,
            attribute_probability: 0.12,
            mutation_probability: 0.35,
            compound_probability: 0.25,
            large_tree_probability: 0.06,
            large_tree_size: (120, 400),
        }
    }
}

impl GeneratorConfig {
    /// The configuration used by the paper-scale experiments: ≈ 9 759 elements spread
    /// over a few hundred trees (the paper's default experiment repository has 9 759
    /// elements over 262 trees, i.e. mean tree size ≈ 37).
    pub fn paper_default() -> Self {
        GeneratorConfig {
            seed: 2006,
            target_elements: 9_759,
            min_tree_size: 8,
            max_tree_size: 60,
            max_depth: 14,
            attribute_probability: 0.10,
            mutation_probability: 0.35,
            compound_probability: 0.25,
            large_tree_probability: 0.10,
            large_tree_size: (150, 600),
        }
    }

    /// A small configuration for unit tests and the quickstart example.
    pub fn small(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            target_elements: 600,
            min_tree_size: 6,
            max_tree_size: 40,
            ..Self::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style target size override.
    pub fn with_target_elements(mut self, n: usize) -> Self {
        self.target_elements = n;
        self
    }
}

/// The generator itself. Create with a config, call [`RepositoryGenerator::generate`].
#[derive(Debug)]
pub struct RepositoryGenerator {
    config: GeneratorConfig,
}

impl RepositoryGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        RepositoryGenerator { config }
    }

    /// Generate a repository according to the configuration.
    pub fn generate(&self) -> SchemaRepository {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mutator = NameMutator::new(self.config.mutation_probability);
        let domains = vocabulary::all_domains();
        let mut trees = Vec::new();
        let mut total = 0usize;
        let mut tree_index = 0usize;
        while total < self.config.target_elements {
            let domain = domains[rng.gen_range(0..domains.len())];
            let remaining = self.config.target_elements - total;
            let size = self
                .draw_tree_size(&mut rng)
                .min(remaining.max(self.config.min_tree_size));
            let tree = self.generate_tree(&mut rng, domain, size, tree_index, &mutator);
            total += tree.len();
            trees.push(tree);
            tree_index += 1;
        }
        SchemaRepository::from_trees(trees)
    }

    /// Draw a tree size. With probability `large_tree_probability` the size comes from
    /// the large-schema range (uniformly); otherwise from a right-skewed distribution
    /// over `[min, max]` (the square of a uniform variate, so small trees dominate) —
    /// matching collections of schemas crawled from the web.
    fn draw_tree_size(&self, rng: &mut StdRng) -> usize {
        if self.config.large_tree_probability > 0.0
            && rng.gen_bool(self.config.large_tree_probability.clamp(0.0, 1.0))
        {
            let (lo, hi) = self.config.large_tree_size;
            let (lo, hi) = (lo.max(2), hi.max(lo.max(2)));
            return rng.gen_range(lo..=hi);
        }
        let lo = self.config.min_tree_size as f64;
        let hi = self.config.max_tree_size as f64;
        let u: f64 = rng.gen();
        let skewed = u * u; // bias towards 0
        (lo + skewed * (hi - lo)).round() as usize
    }

    /// Generate one tree of roughly `size` nodes from `domain`.
    fn generate_tree(
        &self,
        rng: &mut StdRng,
        domain: &Domain,
        size: usize,
        index: usize,
        mutator: &NameMutator,
    ) -> SchemaTree {
        let root_name = domain.roots[rng.gen_range(0..domain.roots.len())];
        let mut tree = SchemaTree::new(format!("synthetic/{}-{index}", domain.name));
        let root = tree
            .add_root(SchemaNode::element(root_name))
            .expect("fresh tree has no root");

        // Candidate parents. Uniform selection over the existing element nodes yields a
        // random-recursive-tree shape: logarithmic depth, realistic mix of wide and
        // deep regions, and pairwise path distances that grow with the schema size —
        // the regime in which distance-based clustering meaningfully partitions a tree.
        let mut parents: Vec<NodeId> = vec![root];
        while tree.len() < size {
            let idx = rng.gen_range(0..parents.len());
            let parent = parents[idx];
            if tree.depth(parent) >= self.config.max_depth {
                // Replace this pick with the root to avoid exceeding the depth bound.
                continue;
            }
            let is_attribute = rng.gen_bool(self.config.attribute_probability);
            let base = domain.vocabulary[rng.gen_range(0..domain.vocabulary.len())];
            let mut name = mutator.mutate(base, rng);
            if !is_attribute && rng.gen_bool(self.config.compound_probability) {
                let qualifier = domain.qualifiers[rng.gen_range(0..domain.qualifiers.len())];
                name = mutate::compound(qualifier, &name, rng);
            }
            let node = if is_attribute {
                let ty = pick_datatype(rng);
                SchemaNode::attribute(name).with_datatype(ty)
            } else {
                let card = pick_cardinality(rng);
                let mut n = SchemaNode::element(name).with_cardinality(card);
                if rng.gen_bool(0.5) {
                    n.datatype = Some(pick_datatype(rng));
                }
                n
            };
            let id = tree.add_child(parent, node).expect("parent exists");
            // Attributes never get children.
            if !is_attribute {
                parents.push(id);
            }
        }
        tree
    }
}

fn pick_datatype(rng: &mut StdRng) -> XsdType {
    // Web schemas are overwhelmingly string-typed.
    let roll: f64 = rng.gen();
    if roll < 0.55 {
        XsdType::String
    } else if roll < 0.70 {
        XsdType::Int
    } else if roll < 0.80 {
        XsdType::Date
    } else if roll < 0.87 {
        XsdType::Decimal
    } else if roll < 0.93 {
        XsdType::Boolean
    } else if roll < 0.97 {
        XsdType::AnyUri
    } else {
        XsdType::Id
    }
}

fn pick_cardinality(rng: &mut StdRng) -> Cardinality {
    let roll: f64 = rng.gen();
    if roll < 0.6 {
        Cardinality::One
    } else if roll < 0.8 {
        Cardinality::Optional
    } else if roll < 0.92 {
        Cardinality::ZeroOrMore
    } else {
        Cardinality::OneOrMore
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_equal_seeds() {
        let cfg = GeneratorConfig::small(7);
        let a = RepositoryGenerator::new(cfg.clone()).generate();
        let b = RepositoryGenerator::new(cfg).generate();
        assert_eq!(a.tree_count(), b.tree_count());
        assert_eq!(a.total_nodes(), b.total_nodes());
        let names_a: Vec<String> = a.nodes().map(|(_, n)| n.name.clone()).collect();
        let names_b: Vec<String> = b.nodes().map(|(_, n)| n.name.clone()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RepositoryGenerator::new(GeneratorConfig::small(1)).generate();
        let b = RepositoryGenerator::new(GeneratorConfig::small(2)).generate();
        let names_a: Vec<String> = a.nodes().map(|(_, n)| n.name.clone()).collect();
        let names_b: Vec<String> = b.nodes().map(|(_, n)| n.name.clone()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn respects_target_size_and_bounds() {
        let cfg = GeneratorConfig::small(3);
        let repo = RepositoryGenerator::new(cfg.clone()).generate();
        assert!(repo.total_nodes() >= cfg.target_elements);
        // Overshoot is bounded by one tree.
        assert!(repo.total_nodes() < cfg.target_elements + cfg.max_tree_size + 1);
        for (_, tree) in repo.trees() {
            assert!(tree.len() >= 2, "degenerate tree generated");
            assert!(tree.max_depth() <= cfg.max_depth);
            assert!(tree.validate().is_ok());
        }
    }

    #[test]
    fn paper_default_reaches_paper_scale() {
        let repo = RepositoryGenerator::new(GeneratorConfig::paper_default()).generate();
        assert!(repo.total_nodes() >= 9_759);
        // A few hundred trees, like the paper's 262.
        assert!(repo.tree_count() > 50, "only {} trees", repo.tree_count());
        assert!(repo.tree_count() < 1000);
    }

    #[test]
    fn vocabulary_names_appear_widely() {
        let repo = RepositoryGenerator::new(GeneratorConfig::small(11)).generate();
        // Names similar to the personal-schema terms of the paper's experiment should
        // exist in the corpus ("name", "address", "email" and their variants).
        let mut name_hits = 0usize;
        let mut addr_hits = 0usize;
        let mut mail_hits = 0usize;
        for (_, node) in repo.nodes() {
            let lower = node.name.to_lowercase();
            if lower.contains("name") {
                name_hits += 1;
            }
            if lower.contains("addr") {
                addr_hits += 1;
            }
            if lower.contains("mail") {
                mail_hits += 1;
            }
        }
        assert!(name_hits > 5, "name-like nodes: {name_hits}");
        assert!(addr_hits > 2, "address-like nodes: {addr_hits}");
        assert!(mail_hits > 1, "email-like nodes: {mail_hits}");
    }

    #[test]
    fn attributes_are_leaves_with_datatypes() {
        let repo = RepositoryGenerator::new(GeneratorConfig::small(5)).generate();
        let mut attr_count = 0usize;
        for (tid, tree) in repo.trees() {
            for (nid, node) in tree.nodes() {
                if node.kind == xsm_schema::NodeKind::Attribute {
                    attr_count += 1;
                    assert!(tree.is_leaf(nid), "attribute with children in {tid}");
                    assert!(node.datatype.is_some());
                }
            }
        }
        assert!(attr_count > 0, "no attributes generated at 12% probability");
    }
}
