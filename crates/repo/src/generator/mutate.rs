//! Name mutation: the generator's model of how real-world schema designers vary names.
//!
//! The element matcher's whole reason to exist is that two schemas "even if they have
//! an identical meaning, can be quite different on the syntactic level". The mutator
//! reproduces the common sources of that variation: typos (substitution, deletion,
//! transposition — the same operations `CompareStringFuzzy` scores), abbreviation,
//! synonym substitution, case-style changes and compounding.

use rand::prelude::*;
use rand::rngs::StdRng;
use xsm_similarity::synonym::builtin_groups;

/// Applies a randomly chosen mutation to vocabulary names with a configured probability.
#[derive(Debug, Clone)]
pub struct NameMutator {
    probability: f64,
    synonym_groups: Vec<Vec<&'static str>>,
}

impl NameMutator {
    /// Create a mutator that mutates each name with probability `probability`
    /// (clamped to `[0,1]`).
    pub fn new(probability: f64) -> Self {
        NameMutator {
            probability: probability.clamp(0.0, 1.0),
            synonym_groups: builtin_groups(),
        }
    }

    /// Possibly mutate `name`. Returns the (possibly unchanged) name.
    pub fn mutate(&self, name: &str, rng: &mut StdRng) -> String {
        if name.is_empty() || !rng.gen_bool(self.probability) {
            return name.to_string();
        }
        match rng.gen_range(0..6u8) {
            0 => typo_substitution(name, rng),
            1 => typo_deletion(name, rng),
            2 => typo_transposition(name, rng),
            3 => abbreviate(name),
            4 => self
                .synonym(name, rng)
                .unwrap_or_else(|| case_style(name, rng)),
            _ => case_style(name, rng),
        }
    }

    /// Replace the name with a random member of its synonym group, when one exists.
    fn synonym(&self, name: &str, rng: &mut StdRng) -> Option<String> {
        let lower = name.to_lowercase();
        for group in &self.synonym_groups {
            if group.iter().any(|&g| g.eq_ignore_ascii_case(&lower)) {
                let choice = group[rng.gen_range(0..group.len())];
                return Some(choice.to_string());
            }
        }
        None
    }
}

/// Substitute one interior character with a nearby letter.
fn typo_substitution(name: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return name.to_string();
    }
    let pos = rng.gen_range(1..chars.len() - 1);
    let replacement = (b'a' + rng.gen_range(0..26u8)) as char;
    chars[pos] = replacement;
    chars.into_iter().collect()
}

/// Delete one interior character (`address` → `adress`).
fn typo_deletion(name: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return name.to_string();
    }
    let pos = rng.gen_range(1..chars.len() - 1);
    chars
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != pos)
        .map(|(_, &c)| c)
        .collect()
}

/// Swap two adjacent interior characters (`author` → `auhtor`).
fn typo_transposition(name: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    if chars.len() < 4 {
        return name.to_string();
    }
    let pos = rng.gen_range(1..chars.len() - 2);
    chars.swap(pos, pos + 1);
    chars.into_iter().collect()
}

/// Crude abbreviation: keep the first syllable-ish prefix and drop vowels from the rest
/// (`description` → `descrptn` style), or truncate short names.
fn abbreviate(name: &str) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() <= 4 {
        return name.to_string();
    }
    let keep = 3usize;
    let mut out: String = chars[..keep].iter().collect();
    for &c in &chars[keep..] {
        if !"aeiouAEIOU".contains(c) {
            out.push(c);
        }
    }
    if out.len() < 3 {
        name.chars().take(4).collect()
    } else {
        out
    }
}

/// Re-render the name in a different case style (snake_case, kebab-case, PascalCase,
/// lowercase).
fn case_style(name: &str, rng: &mut StdRng) -> String {
    let tokens = xsm_similarity::token::tokenize(name);
    if tokens.is_empty() {
        return name.to_string();
    }
    match rng.gen_range(0..4u8) {
        0 => tokens.join("_"),
        1 => tokens.join("-"),
        2 => tokens
            .iter()
            .map(|t| {
                let mut c = t.chars();
                match c.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect::<String>(),
        _ => tokens.concat(),
    }
}

/// Compound a qualifier and a base name in camelCase (`shipping` + `address` →
/// `shippingAddress`) or snake_case, chosen at random.
pub fn compound(qualifier: &str, base: &str, rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        let mut c = base.chars();
        let capitalized = match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        };
        format!("{qualifier}{capitalized}")
    } else {
        format!("{qualifier}_{base}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use xsm_similarity::compare_string_fuzzy;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn zero_probability_never_mutates() {
        let m = NameMutator::new(0.0);
        let mut r = rng();
        for _ in 0..20 {
            assert_eq!(m.mutate("address", &mut r), "address");
        }
    }

    #[test]
    fn full_probability_usually_changes_long_names() {
        let m = NameMutator::new(1.0);
        let mut r = rng();
        let mut changed = 0;
        for _ in 0..50 {
            if m.mutate("description", &mut r) != "description" {
                changed += 1;
            }
        }
        assert!(changed > 25, "only {changed}/50 mutations changed the name");
    }

    #[test]
    fn mutations_stay_recognisable_by_the_fuzzy_kernel() {
        // The point of the mutation model: mutated names must remain *similar* to the
        // original under the matcher's kernel (otherwise matching would be impossible,
        // in the paper as well). Synonym substitution is the exception by design.
        let m = NameMutator::new(1.0);
        let mut r = rng();
        let mut similar = 0usize;
        let mut total = 0usize;
        for base in ["address", "customerName", "publicationYear", "telephone"] {
            for _ in 0..25 {
                let mutated = m.mutate(base, &mut r);
                total += 1;
                if compare_string_fuzzy(base, &mutated) >= 0.5
                    || xsm_similarity::token::token_set_similarity(base, &mutated) >= 0.5
                {
                    similar += 1;
                }
            }
        }
        assert!(
            similar as f64 / total as f64 > 0.7,
            "only {similar}/{total} mutations stayed similar"
        );
    }

    #[test]
    fn typo_helpers_produce_expected_edit_distance() {
        let mut r = rng();
        let sub = typo_substitution("address", &mut r);
        assert_eq!(sub.len(), "address".len());
        let del = typo_deletion("address", &mut r);
        assert_eq!(del.len(), "address".len() - 1);
        let tr = typo_transposition("address", &mut r);
        assert_eq!(tr.len(), "address".len());
        // Short names pass through unchanged.
        assert_eq!(typo_deletion("ab", &mut r), "ab");
        assert_eq!(typo_transposition("abc", &mut r), "abc");
        assert_eq!(typo_substitution("ab", &mut r), "ab");
    }

    #[test]
    fn abbreviation_shortens_long_names() {
        assert!(abbreviate("description").len() < "description".len());
        assert_eq!(abbreviate("id"), "id");
        assert_eq!(abbreviate("name"), "name");
    }

    #[test]
    fn compound_joins_qualifier_and_base() {
        let mut r = rng();
        for _ in 0..10 {
            let c = compound("shipping", "address", &mut r);
            assert!(c == "shippingAddress" || c == "shipping_address", "{c}");
        }
    }

    #[test]
    fn case_style_preserves_tokens() {
        let mut r = rng();
        for _ in 0..10 {
            let styled = case_style("customerName", &mut r);
            let flattened: String = styled
                .chars()
                .filter(|c| c.is_alphanumeric())
                .flat_map(|c| c.to_lowercase())
                .collect();
            assert_eq!(flattened, "customername", "styled = {styled}");
        }
    }

    #[test]
    fn synonym_mutation_uses_builtin_groups() {
        let m = NameMutator::new(1.0);
        let mut r = rng();
        let mut saw_synonym = false;
        for _ in 0..200 {
            let out = m.mutate("email", &mut r);
            if out != "email"
                && ["mail", "e-mail", "electronicmail"].contains(&out.to_lowercase().as_str())
            {
                saw_synonym = true;
                break;
            }
        }
        assert!(saw_synonym, "synonym branch never produced a group member");
    }
}
