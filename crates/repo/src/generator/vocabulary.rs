//! Domain vocabularies for the synthetic corpus.
//!
//! Six domains whose element names mirror what the paper's crawled web schemas contain.
//! The personal schemas used in the experiments (`book/title/author` from Fig. 1 and
//! `name/address/email` from Sec. 5) must find many graded matches, so contact- and
//! bibliography-flavoured terms are deliberately spread across several domains —
//! exactly the situation that makes exhaustive matching expensive and clustering
//! worthwhile.

/// A vocabulary domain.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    /// Short domain name (also used in generated tree names).
    pub name: &'static str,
    /// Candidate root-element names.
    pub roots: &'static [&'static str],
    /// Element/attribute base names.
    pub vocabulary: &'static [&'static str],
    /// Qualifiers used when compounding (e.g. `shipping` + `address`).
    pub qualifiers: &'static [&'static str],
}

/// The contacts / person domain.
pub static CONTACTS: Domain = Domain {
    name: "contacts",
    roots: &[
        "person",
        "contact",
        "addressBook",
        "profile",
        "member",
        "user",
    ],
    vocabulary: &[
        "name",
        "firstName",
        "lastName",
        "middleName",
        "nickname",
        "title",
        "address",
        "street",
        "city",
        "state",
        "zip",
        "postalCode",
        "country",
        "email",
        "emailAddress",
        "phone",
        "telephone",
        "mobile",
        "fax",
        "homepage",
        "url",
        "birthDate",
        "age",
        "gender",
        "company",
        "organization",
        "department",
        "jobTitle",
        "note",
        "photo",
    ],
    qualifiers: &[
        "home",
        "work",
        "primary",
        "secondary",
        "billing",
        "shipping",
        "personal",
    ],
};

/// The library / bibliography domain (the paper's Fig. 1 world).
pub static LIBRARY: Domain = Domain {
    name: "library",
    roots: &[
        "lib",
        "library",
        "catalog",
        "bibliography",
        "collection",
        "bookstore",
    ],
    vocabulary: &[
        "book",
        "title",
        "subtitle",
        "author",
        "authorName",
        "editor",
        "publisher",
        "publicationYear",
        "year",
        "isbn",
        "edition",
        "volume",
        "series",
        "chapter",
        "page",
        "pages",
        "abstract",
        "keyword",
        "subject",
        "language",
        "shelf",
        "data",
        "address",
        "genre",
        "format",
        "price",
        "copy",
        "barcode",
        "dueDate",
        "borrower",
        "name",
        "email",
    ],
    qualifiers: &["main", "original", "translated", "first", "last", "co"],
};

/// The commerce / orders domain.
pub static COMMERCE: Domain = Domain {
    name: "commerce",
    roots: &[
        "order",
        "invoice",
        "purchaseOrder",
        "cart",
        "shipment",
        "catalog",
    ],
    vocabulary: &[
        "orderId",
        "orderDate",
        "customer",
        "customerName",
        "item",
        "product",
        "productName",
        "sku",
        "quantity",
        "qty",
        "price",
        "unitPrice",
        "total",
        "totalAmount",
        "currency",
        "discount",
        "tax",
        "address",
        "shippingAddress",
        "billingAddress",
        "deliveryDate",
        "status",
        "payment",
        "cardNumber",
        "email",
        "phone",
        "name",
        "description",
        "category",
        "weight",
        "vendor",
        "supplier",
    ],
    qualifiers: &[
        "shipping", "billing", "line", "net", "gross", "unit", "ordered",
    ],
};

/// The organisation / HR domain.
pub static ORGANIZATION: Domain = Domain {
    name: "organization",
    roots: &[
        "company",
        "organization",
        "department",
        "employeeList",
        "staff",
        "directory",
    ],
    vocabulary: &[
        "employee",
        "employeeId",
        "name",
        "firstName",
        "lastName",
        "position",
        "role",
        "salary",
        "manager",
        "department",
        "division",
        "office",
        "location",
        "address",
        "email",
        "phone",
        "extension",
        "hireDate",
        "birthDate",
        "skill",
        "project",
        "team",
        "budget",
        "headcount",
        "title",
        "grade",
        "contract",
        "status",
    ],
    qualifiers: &["line", "senior", "acting", "deputy", "regional", "head"],
};

/// The publications / news domain.
pub static PUBLICATIONS: Domain = Domain {
    name: "publications",
    roots: &[
        "article",
        "journal",
        "proceedings",
        "newsFeed",
        "magazine",
        "paper",
    ],
    vocabulary: &[
        "title",
        "headline",
        "author",
        "byline",
        "abstract",
        "body",
        "section",
        "paragraph",
        "date",
        "publicationDate",
        "volume",
        "issue",
        "page",
        "doi",
        "keyword",
        "reference",
        "citation",
        "affiliation",
        "email",
        "conference",
        "editor",
        "reviewer",
        "category",
        "summary",
        "link",
        "image",
        "caption",
        "name",
    ],
    qualifiers: &["corresponding", "first", "last", "lead", "guest"],
};

/// A generic "web data" domain: configuration files, feeds, measurements.
pub static WEBDATA: Domain = Domain {
    name: "webdata",
    roots: &[
        "record", "dataset", "entry", "document", "resource", "config", "feed",
    ],
    vocabulary: &[
        "id",
        "identifier",
        "name",
        "label",
        "value",
        "type",
        "description",
        "created",
        "modified",
        "timestamp",
        "owner",
        "source",
        "target",
        "url",
        "link",
        "size",
        "count",
        "version",
        "status",
        "tag",
        "property",
        "attribute",
        "field",
        "format",
        "encoding",
        "checksum",
        "parent",
        "child",
        "comment",
        "metadata",
    ],
    qualifiers: &["min", "max", "default", "current", "previous", "next"],
};

/// All built-in domains.
pub fn all_domains() -> &'static [&'static Domain] {
    static ALL: [&Domain; 6] = [
        &CONTACTS,
        &LIBRARY,
        &COMMERCE,
        &ORGANIZATION,
        &PUBLICATIONS,
        &WEBDATA,
    ];
    &ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_are_nonempty() {
        for d in all_domains() {
            assert!(!d.roots.is_empty(), "{}", d.name);
            assert!(d.vocabulary.len() >= 25, "{}", d.name);
            assert!(!d.qualifiers.is_empty(), "{}", d.name);
        }
    }

    #[test]
    fn personal_schema_terms_are_reachable_in_multiple_domains() {
        // The paper's Sec. 5 personal schema is name / address / email; those terms or
        // close variants must appear in several domains for the experiment to make sense.
        let mut name_domains = 0;
        let mut addr_domains = 0;
        let mut mail_domains = 0;
        for d in all_domains() {
            if d.vocabulary
                .iter()
                .any(|w| w.to_lowercase().contains("name"))
            {
                name_domains += 1;
            }
            if d.vocabulary
                .iter()
                .any(|w| w.to_lowercase().contains("addr"))
            {
                addr_domains += 1;
            }
            if d.vocabulary
                .iter()
                .any(|w| w.to_lowercase().contains("mail"))
            {
                mail_domains += 1;
            }
        }
        assert!(name_domains >= 4, "name in {name_domains} domains");
        assert!(addr_domains >= 3, "address in {addr_domains} domains");
        assert!(mail_domains >= 3, "email in {mail_domains} domains");
    }

    #[test]
    fn fig1_terms_exist_in_library_domain() {
        for term in ["book", "title", "author", "shelf", "data", "address"] {
            assert!(
                LIBRARY.vocabulary.contains(&term) || LIBRARY.roots.contains(&term),
                "missing {term}"
            );
        }
    }

    #[test]
    fn domain_names_are_unique() {
        let mut names: Vec<&str> = all_domains().iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all_domains().len());
    }
}
