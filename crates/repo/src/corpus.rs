//! Loading a real schema corpus (DTD / XSD files) from disk.
//!
//! When a user has an actual crawled corpus (as the paper's authors did), this module
//! turns a directory of `.dtd` / `.xsd` files into a [`SchemaRepository`]. Files that
//! fail to parse are skipped and reported, mirroring how a web crawl inevitably
//! contains broken schemas.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use xsm_schema::parser::parse_schema;

use crate::repository::SchemaRepository;

/// The result of loading a corpus directory.
#[derive(Debug, Default)]
pub struct CorpusLoadReport {
    /// Files successfully parsed.
    pub loaded_files: Vec<PathBuf>,
    /// Files skipped, with the reason.
    pub skipped_files: Vec<(PathBuf, String)>,
    /// Number of trees added to the repository.
    pub tree_count: usize,
    /// Number of nodes added to the repository.
    pub node_count: usize,
}

/// Load every `.dtd`, `.xsd` and `.xml` file under `dir` (non-recursive) into a
/// repository. Returns the repository and a load report.
pub fn load_directory(dir: &Path) -> io::Result<(SchemaRepository, CorpusLoadReport)> {
    let mut repo = SchemaRepository::new();
    let mut report = CorpusLoadReport::default();
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .map(|e| matches!(e.to_ascii_lowercase().as_str(), "dtd" | "xsd" | "xml"))
                .unwrap_or(false)
        })
        .collect();
    entries.sort();
    for path in entries {
        match fs::read_to_string(&path) {
            Ok(content) => {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("schema")
                    .to_string();
                match parse_schema(&name, &content) {
                    Ok(forest) => {
                        for tree in forest {
                            report.node_count += tree.len();
                            report.tree_count += 1;
                            repo.add_tree(tree);
                        }
                        report.loaded_files.push(path);
                    }
                    Err(e) => report.skipped_files.push((path, e.to_string())),
                }
            }
            Err(e) => report.skipped_files.push((path, e.to_string())),
        }
    }
    Ok((repo, report))
}

/// Parse a list of in-memory documents (name, content) into a repository; broken
/// documents are skipped. Useful for embedding small corpora in tests and examples.
pub fn load_documents<'a, I>(docs: I) -> (SchemaRepository, CorpusLoadReport)
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut repo = SchemaRepository::new();
    let mut report = CorpusLoadReport::default();
    for (name, content) in docs {
        match parse_schema(name, content) {
            Ok(forest) => {
                for tree in forest {
                    report.node_count += tree.len();
                    report.tree_count += 1;
                    repo.add_tree(tree);
                }
                report.loaded_files.push(PathBuf::from(name));
            }
            Err(e) => report
                .skipped_files
                .push((PathBuf::from(name), e.to_string())),
        }
    }
    (repo, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_DTD: &str =
        "<!ELEMENT person (name, email)> <!ELEMENT name (#PCDATA)> <!ELEMENT email (#PCDATA)>";
    const GOOD_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
        <xs:element name="order"><xs:complexType><xs:sequence>
            <xs:element name="item" type="xs:string" maxOccurs="unbounded"/>
            <xs:element name="total" type="xs:decimal"/>
        </xs:sequence></xs:complexType></xs:element>
    </xs:schema>"#;
    const BROKEN: &str = "<xs:schema><xs:element name='a'>"; // unbalanced

    #[test]
    fn load_documents_mixes_dialects_and_skips_broken() {
        let (repo, report) = load_documents([
            ("people.dtd", GOOD_DTD),
            ("orders.xsd", GOOD_XSD),
            ("broken.xsd", BROKEN),
        ]);
        assert_eq!(report.loaded_files.len(), 2);
        assert_eq!(report.skipped_files.len(), 1);
        assert_eq!(repo.tree_count(), 2);
        assert_eq!(report.tree_count, 2);
        assert_eq!(repo.total_nodes(), report.node_count);
        assert!(repo.total_nodes() >= 6);
    }

    #[test]
    fn load_directory_reads_files_from_disk() {
        let dir = std::env::temp_dir().join(format!("xsm_corpus_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.dtd"), GOOD_DTD).unwrap();
        fs::write(dir.join("b.xsd"), GOOD_XSD).unwrap();
        fs::write(dir.join("c.xsd"), BROKEN).unwrap();
        fs::write(dir.join("ignored.txt"), "not a schema").unwrap();

        let (repo, report) = load_directory(&dir).unwrap();
        assert_eq!(report.loaded_files.len(), 2);
        assert_eq!(report.skipped_files.len(), 1);
        assert_eq!(repo.tree_count(), 2);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_directory_missing_path_errors() {
        let missing = Path::new("/definitely/not/a/path/xsm");
        assert!(load_directory(missing).is_err());
    }
}
