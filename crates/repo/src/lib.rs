//! # xsm-repo — schema repository, indexes and the synthetic corpus generator
//!
//! The paper's Bellflower system matches a small *personal schema* against a large
//! *schema repository*: "GoogleTM search engine was used to discover 1700 non-recursive
//! DTDs and XML schemas with a total number of 178252 element (attribute) nodes
//! distributed over 3889 trees", from which sub-repositories of 2 500 – 10 200 elements
//! were sampled for the experiments.
//!
//! This crate provides:
//!
//! * [`SchemaRepository`] — the forest store with per-tree node labellings,
//! * [`index::NameIndex`] — exact and q-gram approximate name lookup across the forest,
//! * [`features::FeatureStore`] — one precomputed `NameFeatures` per node plus the
//!   shared gram interner, built together with the index so the similarity kernels
//!   never re-derive per-name data at query time,
//! * [`generator`] — a seeded synthetic corpus generator that substitutes for the
//!   crawled corpus (see DESIGN.md, substitution 1): domain vocabularies, realistic
//!   tree shapes and name mutations give the same *statistical* behaviour that the
//!   matching and clustering algorithms depend on,
//! * [`corpus`] — loading real DTD/XSD files from disk through the `xsm-schema` parsers,
//! * [`sampling`] — drawing sub-repositories of a target element count, as the paper
//!   does for its experiments,
//! * [`partition`] — deterministic tree-to-shard placement
//!   ([`RepositoryPartition`]) for serving one repository from several engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod features;
pub mod generator;
pub mod index;
pub mod live;
pub mod partition;
pub mod repository;
pub mod sampling;
pub mod simd;
pub mod snapshot;

pub use features::FeatureStore;
pub use generator::{GeneratorConfig, RepositoryGenerator};
pub use index::{
    CandidateQuery, CandidateScratch, CandidateStats, LengthWindow, MergeAlgorithm, MergePolicy,
    NameIndex, ResolvedQuery,
};
pub use live::{IngestLog, IngestOp, IngestRecord, LiveError, LiveRepository};
pub use partition::{tree_hash_shard, RepositoryPartition, ShardPlacement};
pub use repository::SchemaRepository;
pub use snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
