//! Safe facade over the vectorized kernels in [`xsm_similarity::simd`].
//!
//! This crate stays `forbid(unsafe_code)`: all intrinsics live behind the safe
//! API in `xsm-similarity`, and this module only re-exports the pieces the
//! index hot paths use plus the index-side dispatch knobs that depend on
//! which kernel tier is active.

pub use xsm_similarity::simd::{
    accumulate_run, accumulate_run_scalar, active_kernel, force_scalar, lowercase, simd_active,
};

/// In-window posting volume at or below which the plain dense-counter
/// ScanCount merge is preferred over ScanProbe.
///
/// The vectorized [`accumulate_run`] core roughly halves the per-posting cost
/// of the dense counter scan, so when it is active a larger volume still beats
/// the probe bookkeeping; the forced-scalar/portable threshold is the
/// pre-SIMD constant. Only the `MergePolicy::Auto` *choice* moves — every
/// policy returns identical candidates, so equivalence suites are unaffected.
pub fn scan_count_max_volume() -> usize {
    if simd_active() {
        8_192
    } else {
        2_048
    }
}
