//! On-disk format primitives: magic, header types, checksums, and the
//! little-endian encode/decode helpers shared by writer and reader.

use serde::{Deserialize, Serialize};

use super::SnapshotError;

/// First eight bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"XSMSNAP1";

/// The format revision this build writes and the only one it reads. Bumped on
/// any byte-layout change; there is no cross-version migration.
///
/// v2 added the `index_pos` section (packed gram-position intervals parallel
/// to the posting arena, feeding the positional q-gram filter).
pub const FORMAT_VERSION: u32 = 2;

/// Bytes before the header payload: magic + version (u32) + header length (u32).
pub(crate) const PREAMBLE_LEN: usize = 8 + 4 + 4;

/// Trailing whole-file checksum length.
pub(crate) const FOOTER_LEN: usize = 8;

/// Root sentinel in the `node_meta` parent column, and the "no centroid"
/// sentinel in the `centroids` section.
pub(crate) const NONE_SENTINEL: u32 = u32::MAX;

/// Required section names, in the order the writer lays them out.
pub(crate) mod section {
    pub const TREES: &str = "trees";
    pub const NODE_NAMES: &str = "node_names";
    pub const NODE_META: &str = "node_meta";
    pub const NODE_PROPS: &str = "node_props";
    pub const LABELINGS: &str = "labelings";
    pub const GRAM_TABLE: &str = "gram_table";
    pub const GRAM_SIGS: &str = "gram_sigs";
    /// One byte per signature entry — multiplicities above 255 cannot occur
    /// unless a single name repeats one gram 256+ times, so the writer emits
    /// [`GRAM_COUNTS_WIDE`] instead (and this section not at all) in that case.
    pub const GRAM_COUNTS: &str = "gram_counts";
    /// Four bytes per signature entry; present only when some multiplicity
    /// exceeds `u8::MAX`. Exactly one of the two count sections exists.
    pub const GRAM_COUNTS_WIDE: &str = "gram_counts_wide";
    pub const PEQ: &str = "peq";
    pub const INDEX_ARENA: &str = "index_arena";
    /// Packed `first << 16 | last` gram-position intervals, one `u32` per
    /// posting-arena entry (the positional-filter sidecar). New in format v2.
    pub const INDEX_POS: &str = "index_pos";
    pub const INDEX_SEGMENTS: &str = "index_segments";
    pub const INDEX_GRAM_SEGMENTS: &str = "index_gram_segments";
    pub const INDEX_LENS: &str = "index_lens";
    pub const EXACT_NAMES: &str = "exact_names";
    pub const EXACT_NODES: &str = "exact_nodes";
    pub const CENTROIDS: &str = "centroids";
    /// Tombstoned tree ids (u32, ascending). **Optional**: written only when a
    /// live repository has tombstones, so snapshots of never-mutated
    /// repositories keep their byte layout (the golden-file suite pins it).
    pub const TOMBSTONES: &str = "tombstones";
}

/// One entry of the section directory carried in the header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionEntry {
    /// Section name (see the format documentation in [`crate::snapshot`]).
    pub name: String,
    /// Byte offset of the payload, relative to the first section byte (i.e.
    /// to the end of the header, not to the start of the file).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// `checksum64` of the payload bytes (see the module's checksum docs).
    pub checksum: u64,
}

/// The snapshot header: the only serde-encoded part of the file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Repository generation stamp — lets caches and shard routers reject a
    /// snapshot of the wrong repository revision precisely.
    pub generation: u64,
    /// Gram length of the interner and index.
    pub q: u32,
    /// Number of trees in the snapshotted repository.
    pub tree_count: u32,
    /// Total node count across all trees.
    pub node_count: u32,
    /// Local tree index → global [`xsm_schema::TreeId`] value. Identity for a
    /// whole-repository snapshot; the shard's slice of the router's tree map
    /// for a per-shard snapshot.
    pub tree_map: Vec<u32>,
    /// The section directory.
    pub sections: Vec<SectionEntry>,
}

/// The 64-bit checksum used for sections and the footer: an FNV-style
/// xor-multiply fold over little-endian `u64` words, run in four independent
/// lanes so the multiply latency chains overlap (≈8× the throughput of
/// byte-at-a-time FNV-1a — validation is on the startup path, so checksum
/// speed is load speed). Tail bytes and the total length fold into the final
/// combine, so prefixes and zero-padded tails cannot collide trivially.
/// Not cryptographic; it detects bit rot and torn writes, not adversaries.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEEDS: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x9e37_79b9_7f4a_7c15,
        0x8422_2325_cbf2_9ce4,
        0x7f4a_7c15_9e37_79b9,
    ];
    let mut lanes = SEEDS;
    let mut chunks = bytes.chunks_exact(32);
    for c in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut hash = lanes[0];
    for lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ b as u64).wrapping_mul(PRIME);
    }
    (hash ^ bytes.len() as u64).wrapping_mul(PRIME)
}

// ---------------------------------------------------------------------------
// Writing helpers
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a string table: `u32` entry count, `count + 1` cumulative `u32`
/// byte offsets into the blob, then the concatenated UTF-8 blob.
pub(crate) fn put_str_table<'a>(out: &mut Vec<u8>, entries: impl Iterator<Item = &'a str>) {
    let entries: Vec<&str> = entries.collect();
    put_u32(out, entries.len() as u32);
    let mut offset = 0u32;
    put_u32(out, 0);
    for s in &entries {
        offset += s.len() as u32;
        put_u32(out, offset);
    }
    for s in &entries {
        out.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Reading helpers
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over one section's payload. Every
/// overrun or decode failure becomes a [`SnapshotError::Malformed`] naming the
/// section — by the time a cursor runs, the section's checksum has already
/// validated, so a decode failure means the writer (not the disk) was wrong.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            section,
        }
    }

    fn overrun(&self, what: &str) -> SnapshotError {
        SnapshotError::malformed(format!(
            "section `{}` ends before {what} (offset {})",
            self.section, self.pos
        ))
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.overrun(what))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn read_u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decode a run of `n` `u32`s into an owned vector (one `memcpy`-ish pass).
    pub(crate) fn read_u32s(&mut self, n: usize, what: &str) -> Result<Vec<u32>, SnapshotError> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| self.overrun(what))?, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Decode a string table written by [`put_str_table`], expecting exactly
    /// `expected` entries when `Some`.
    pub(crate) fn read_str_table(
        &mut self,
        expected: Option<usize>,
        what: &str,
    ) -> Result<Vec<String>, SnapshotError> {
        let count = self.read_u32(what)? as usize;
        if let Some(expected) = expected {
            if count != expected {
                return Err(SnapshotError::malformed(format!(
                    "section `{}`: {what} has {count} entries, expected {expected}",
                    self.section
                )));
            }
        }
        let offsets = self.read_u32s(count + 1, what)?;
        let blob_len = *offsets.last().unwrap_or(&0) as usize;
        let blob = self.take(blob_len, what)?;
        let mut entries = Vec::with_capacity(count);
        for w in offsets.windows(2) {
            let (start, end) = (w[0] as usize, w[1] as usize);
            if start > end || end > blob.len() {
                return Err(SnapshotError::malformed(format!(
                    "section `{}`: {what} has a non-monotonic offset table",
                    self.section
                )));
            }
            let s = std::str::from_utf8(&blob[start..end]).map_err(|_| {
                SnapshotError::malformed(format!(
                    "section `{}`: {what} contains invalid UTF-8",
                    self.section
                ))
            })?;
            entries.push(s.to_string());
        }
        Ok(entries)
    }

    /// Error unless the cursor consumed the whole payload — trailing garbage
    /// inside a checksummed section still means a malformed writer.
    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::malformed(format!(
                "section `{}` has {} trailing bytes",
                self.section,
                self.bytes.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_pinned_and_length_sensitive() {
        // Self-consistency vectors: the checksum is part of the on-disk format,
        // so any change to the algorithm must show up here (and bump
        // FORMAT_VERSION).
        assert_eq!(checksum64(b""), 0x86d9_6ee5_73f5_2b6d);
        assert_eq!(checksum64(b"a"), 0x1832_b7e4_0939_83a1);
        assert_eq!(checksum64(b"foobar"), 0x9768_c313_5c3a_eb60);
        // Zero-padded tails must not collide with shorter inputs: the total
        // length folds into the final combine.
        let zeros = [0u8; 64];
        let sums: Vec<u64> = (0..=64).map(|n| checksum64(&zeros[..n])).collect();
        for (i, a) in sums.iter().enumerate() {
            for b in &sums[i + 1..] {
                assert_ne!(a, b, "zero runs of different lengths collided");
            }
        }
        // Word order matters within a 32-byte block (lanes are combined in a
        // fixed order, not xor-summed symmetrically).
        let mut block = [0u8; 32];
        block[0] = 1;
        let a = checksum64(&block);
        block[0] = 0;
        block[8] = 1;
        assert_ne!(a, checksum64(&block));
    }

    #[test]
    fn str_table_round_trips() {
        let mut buf = Vec::new();
        put_str_table(&mut buf, ["alpha", "", "βγ"].into_iter());
        let mut cur = Cursor::new(&buf, "test");
        let back = cur.read_str_table(Some(3), "names").unwrap();
        assert_eq!(back, vec!["alpha".to_string(), String::new(), "βγ".into()]);
        cur.finish().unwrap();
    }

    #[test]
    fn cursor_overrun_is_malformed_not_panic() {
        let mut cur = Cursor::new(&[1, 2], "tiny");
        assert!(matches!(
            cur.read_u32("value"),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
