//! The snapshot writer: lay out every engine-startup artefact as flat
//! little-endian sections and stamp the self-describing header around them.
//!
//! The writer is deliberately deterministic byte-for-byte: given the same
//! repository, index, centroids, generation and tree map it produces the same
//! file, which is what lets `tests/snapshot_golden.rs` pin the format. The
//! hash-ordered structures in the engine are therefore laid out in a canonical
//! order instead of map iteration order: the gram table in dense id order, the
//! exact-name map sorted by name.

use std::path::Path;

use xsm_schema::{GlobalNodeId, TreeId, XsdType};

use crate::index::NameIndex;
use crate::repository::SchemaRepository;

use super::format::{
    checksum64, put_str_table, put_u32, put_u64, section, SectionEntry, SnapshotHeader, FOOTER_LEN,
    FORMAT_VERSION, NONE_SENTINEL, SNAPSHOT_MAGIC,
};
use super::SnapshotError;

/// Serializes a repository and its prebuilt index into the snapshot format.
///
/// ```
/// use xsm_repo::{GeneratorConfig, NameIndex, RepositoryGenerator};
/// use xsm_repo::snapshot::{SnapshotReader, SnapshotWriter};
///
/// let repo = RepositoryGenerator::new(GeneratorConfig::small(7)).generate();
/// let index = NameIndex::build(&repo);
/// let centroids = vec![None; repo.tree_count()];
/// let bytes = SnapshotWriter::new(42)
///     .to_bytes(&repo, &index, &centroids)
///     .unwrap();
/// let snapshot = SnapshotReader::read_bytes(&bytes).unwrap();
/// assert_eq!(snapshot.generation, 42);
/// assert_eq!(snapshot.repository.total_nodes(), repo.total_nodes());
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    generation: u64,
    tree_map: Option<Vec<TreeId>>,
}

impl SnapshotWriter {
    /// A writer stamping `generation` into the header. The tree map defaults
    /// to the identity (a whole-repository snapshot).
    pub fn new(generation: u64) -> Self {
        SnapshotWriter {
            generation,
            tree_map: None,
        }
    }

    /// Record a non-identity local-tree → global-tree map (a per-shard
    /// snapshot carrying its slice of the router's tree map). Must have one
    /// entry per tree of the repository being written.
    pub fn with_tree_map(mut self, tree_map: Vec<TreeId>) -> Self {
        self.tree_map = Some(tree_map);
        self
    }

    /// Serialize to an in-memory byte vector. `centroids` carries one entry
    /// per tree (local tree order): the tree's centroid node, or `None` for
    /// an empty tree.
    pub fn to_bytes(
        &self,
        repo: &SchemaRepository,
        index: &NameIndex,
        centroids: &[Option<GlobalNodeId>],
    ) -> Result<Vec<u8>, SnapshotError> {
        let tree_count = repo.tree_count();
        let node_count = repo.total_nodes();
        assert_eq!(
            centroids.len(),
            tree_count,
            "one centroid slot per tree required"
        );
        let tree_map: Vec<u32> = match &self.tree_map {
            Some(map) => {
                assert_eq!(map.len(), tree_count, "tree map must cover every tree");
                map.iter().map(|t| t.0).collect()
            }
            None => (0..tree_count as u32).collect(),
        };

        let store = index.features();
        let interner = store.interner();

        let mut sections: Vec<(&'static str, Vec<u8>)> = Vec::with_capacity(16);

        // trees: name table + per-tree node counts.
        let mut buf = Vec::new();
        put_str_table(&mut buf, repo.trees().map(|(_, t)| t.name()));
        for (_, tree) in repo.trees() {
            put_u32(&mut buf, tree.len() as u32);
        }
        sections.push((section::TREES, buf));

        // node_names: every node's name, canonical (tree, slot) order.
        let mut buf = Vec::new();
        put_str_table(&mut buf, repo.nodes().map(|(_, n)| n.name.as_str()));
        sections.push((section::NODE_NAMES, buf));

        // node_meta: 8 bytes per node — parent, kind, cardinality, datatype, flags.
        let mut buf = Vec::with_capacity(node_count * 8);
        for (_tid, tree) in repo.trees() {
            for (nid, node) in tree.nodes() {
                let parent = tree.parent(nid).map(|p| p.0).unwrap_or(NONE_SENTINEL);
                put_u32(&mut buf, parent);
                buf.push(encode_kind(node.kind));
                buf.push(encode_cardinality(node.cardinality));
                buf.push(encode_datatype(node.datatype));
                buf.push(0); // flags, reserved
            }
        }
        sections.push((section::NODE_META, buf));

        // node_props: sparse (node, key, value) triples — rare in practice.
        let mut buf = Vec::new();
        let mut entries = 0u32;
        let mut body = Vec::new();
        for (dense, (_, node)) in repo.nodes().enumerate() {
            for (key, value) in node.properties() {
                put_u32(&mut body, dense as u32);
                put_u32(&mut body, key.len() as u32);
                body.extend_from_slice(key.as_bytes());
                put_u32(&mut body, value.len() as u32);
                body.extend_from_slice(value.as_bytes());
                entries += 1;
            }
        }
        put_u32(&mut buf, entries);
        buf.extend_from_slice(&body);
        sections.push((section::NODE_PROPS, buf));

        // labelings: each tree's flat label arrays (depth, first occurrence,
        // Euler tour, pre, post), back to back in tree order. Every array
        // length is determined by the tree's node count, so the section needs
        // no directory of its own — the reader slices it apart. Shipping the
        // arrays spares the loader a DFS over every tree; the sparse RMQ
        // table is rebuilt (cheaper than its bytes).
        let mut buf = Vec::new();
        for (tid, _) in repo.trees() {
            let labeling = repo.labeling(tid).expect("one labeling per tree");
            let (depth, first, euler, pre, post) = labeling.raw_parts();
            for arr in [depth, first, euler, pre, post] {
                for &v in arr {
                    put_u32(&mut buf, v);
                }
            }
        }
        sections.push((section::LABELINGS, buf));

        // gram_table: the interner's grams in dense id order.
        let gram_table = interner.gram_table();
        let mut buf = Vec::new();
        put_str_table(&mut buf, gram_table.iter().map(|s| s.as_str()));
        sections.push((section::GRAM_TABLE, buf));

        // gram_sigs / gram_counts / peq: per-node variable-length feature
        // columns, each as offsets + one flat arena.
        let mut sig_offsets = Vec::with_capacity(node_count + 1);
        let mut sig_flat: Vec<u32> = Vec::new();
        let mut count_flat: Vec<u32> = Vec::new();
        let mut peq_offsets = Vec::with_capacity(node_count + 1);
        let mut peq_flat: Vec<(char, u64)> = Vec::new();
        sig_offsets.push(0u32);
        peq_offsets.push(0u32);
        for (_, features) in store.iter() {
            sig_flat.extend_from_slice(features.gram_sig());
            count_flat.extend_from_slice(features.gram_counts());
            sig_offsets.push(sig_flat.len() as u32);
            peq_flat.extend_from_slice(features.peq_pairs());
            peq_offsets.push(peq_flat.len() as u32);
        }

        let mut buf = Vec::with_capacity(4 * (sig_offsets.len() + sig_flat.len()));
        for &v in &sig_offsets {
            put_u32(&mut buf, v);
        }
        for &v in &sig_flat {
            put_u32(&mut buf, v);
        }
        sections.push((section::GRAM_SIGS, buf));

        // Multiplicities fit a byte unless one name repeats a single gram 256+
        // times; only such a pathological corpus pays for the wide encoding.
        if count_flat.iter().all(|&c| c <= u8::MAX as u32) {
            sections.push((
                section::GRAM_COUNTS,
                count_flat.iter().map(|&c| c as u8).collect(),
            ));
        } else {
            let mut buf = Vec::with_capacity(4 * count_flat.len());
            for &v in &count_flat {
                put_u32(&mut buf, v);
            }
            sections.push((section::GRAM_COUNTS_WIDE, buf));
        }

        let mut buf = Vec::with_capacity(4 * peq_offsets.len() + 12 * peq_flat.len());
        for &v in &peq_offsets {
            put_u32(&mut buf, v);
        }
        for &(c, mask) in &peq_flat {
            put_u32(&mut buf, c as u32);
            put_u64(&mut buf, mask);
        }
        sections.push((section::PEQ, buf));

        // The index: posting arena, length-segment directory, per-gram
        // directory offsets, per-node name lengths.
        let mut buf = Vec::with_capacity(4 * index.arena_raw().len());
        for &v in index.arena_raw() {
            put_u32(&mut buf, v);
        }
        sections.push((section::INDEX_ARENA, buf));

        // index_pos: the packed first/last gram-position intervals, entry for
        // entry parallel to the arena (new in format v2).
        let mut buf = Vec::with_capacity(4 * index.arena_pos_raw().len());
        for &v in index.arena_pos_raw() {
            put_u32(&mut buf, v);
        }
        sections.push((section::INDEX_POS, buf));

        let mut buf = Vec::with_capacity(12 * index.segments_raw().len());
        for seg in index.segments_raw() {
            put_u32(&mut buf, seg.len);
            put_u32(&mut buf, seg.start);
            put_u32(&mut buf, seg.end);
        }
        sections.push((section::INDEX_SEGMENTS, buf));

        let mut buf = Vec::with_capacity(4 * index.gram_segments_raw().len());
        for &v in index.gram_segments_raw() {
            put_u32(&mut buf, v);
        }
        sections.push((section::INDEX_GRAM_SEGMENTS, buf));

        let mut buf = Vec::with_capacity(4 * index.lens_raw().len());
        for &v in index.lens_raw() {
            put_u32(&mut buf, v);
        }
        sections.push((section::INDEX_LENS, buf));

        // exact_names / exact_nodes: the exact lowercase-name map — the
        // engine's one remaining hash-ordered structure, laid out sorted by
        // name so the file stays deterministic. Each name's posting list is
        // its dense node indices in stored (ascending) order; shipping the
        // map means the reader inserts once per *distinct* name instead of
        // hashing every node again.
        let exact = index.exact_raw();
        let mut exact_names: Vec<&str> = exact.keys().map(|s| s.as_str()).collect();
        exact_names.sort_unstable();
        let mut buf = Vec::new();
        put_str_table(&mut buf, exact_names.iter().copied());
        sections.push((section::EXACT_NAMES, buf));

        let tree_starts: Vec<u32> = {
            let mut starts = Vec::with_capacity(tree_count + 1);
            starts.push(0u32);
            for (_, tree) in repo.trees() {
                starts.push(starts.last().unwrap() + tree.len() as u32);
            }
            starts
        };
        let mut offsets = Vec::with_capacity(exact_names.len() + 1);
        let mut flat: Vec<u32> = Vec::with_capacity(node_count);
        offsets.push(0u32);
        for name in &exact_names {
            for id in &exact[*name] {
                flat.push(tree_starts[id.tree.index()] + id.node.0);
            }
            offsets.push(flat.len() as u32);
        }
        let mut buf = Vec::with_capacity(4 * (offsets.len() + flat.len()));
        for &v in &offsets {
            put_u32(&mut buf, v);
        }
        for &v in &flat {
            put_u32(&mut buf, v);
        }
        sections.push((section::EXACT_NODES, buf));

        // centroids: one node slot per tree.
        let mut buf = Vec::with_capacity(4 * tree_count);
        for (t, centroid) in centroids.iter().enumerate() {
            let slot = match centroid {
                Some(id) => {
                    assert_eq!(id.tree.index(), t, "centroid must belong to its tree");
                    id.node.0
                }
                None => NONE_SENTINEL,
            };
            put_u32(&mut buf, slot);
        }
        sections.push((section::CENTROIDS, buf));

        // tombstones: the live repository's dead trees, ascending. Only
        // written when present — never-mutated repositories keep the exact
        // byte layout the golden suite pins.
        let tombstones = index.tombstoned_trees();
        if !tombstones.is_empty() {
            let mut buf = Vec::with_capacity(4 * tombstones.len());
            for t in tombstones {
                put_u32(&mut buf, t.0);
            }
            sections.push((section::TOMBSTONES, buf));
        }

        // Directory, header, and final assembly.
        let mut directory = Vec::with_capacity(sections.len());
        let mut offset = 0u64;
        for (name, payload) in &sections {
            directory.push(SectionEntry {
                name: (*name).to_string(),
                offset,
                len: payload.len() as u64,
                checksum: checksum64(payload),
            });
            offset += payload.len() as u64;
        }
        let header = SnapshotHeader {
            generation: self.generation,
            q: index.q() as u32,
            tree_count: tree_count as u32,
            node_count: node_count as u32,
            tree_map,
            sections: directory,
        };
        let header_bytes = serde_json::to_string(&header)
            .map_err(|e| SnapshotError::malformed(format!("header serialization failed: {e}")))?
            .into_bytes();

        let total = 8 + 4 + 4 + header_bytes.len() + offset as usize + FOOTER_LEN;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u32(&mut out, header_bytes.len() as u32);
        out.extend_from_slice(&header_bytes);
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        // The footer checksums the header bytes only: the header carries every
        // section checksum, so it transitively covers the body — one
        // validation pass over the payload instead of two.
        let footer = checksum64(&header_bytes);
        put_u64(&mut out, footer);
        Ok(out)
    }

    /// Serialize straight to `path` (atomically enough for our purposes: the
    /// bytes are fully assembled in memory first, so a crash mid-write leaves
    /// a truncated file the reader rejects, never a silently wrong one).
    /// Returns the file size in bytes.
    pub fn write(
        &self,
        repo: &SchemaRepository,
        index: &NameIndex,
        centroids: &[Option<GlobalNodeId>],
        path: impl AsRef<Path>,
    ) -> Result<u64, SnapshotError> {
        let bytes = self.to_bytes(repo, index, centroids)?;
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

pub(super) fn encode_kind(kind: xsm_schema::NodeKind) -> u8 {
    match kind {
        xsm_schema::NodeKind::Element => 0,
        xsm_schema::NodeKind::Attribute => 1,
    }
}

pub(super) fn encode_cardinality(c: xsm_schema::Cardinality) -> u8 {
    match c {
        xsm_schema::Cardinality::One => 0,
        xsm_schema::Cardinality::Optional => 1,
        xsm_schema::Cardinality::OneOrMore => 2,
        xsm_schema::Cardinality::ZeroOrMore => 3,
    }
}

pub(super) fn encode_datatype(dt: Option<XsdType>) -> u8 {
    match dt {
        None => 0,
        Some(t) => {
            let pos = XsdType::all()
                .iter()
                .position(|&x| x == t)
                .expect("XsdType::all covers every variant");
            (pos + 1) as u8
        }
    }
}
