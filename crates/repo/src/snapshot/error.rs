//! The typed failure taxonomy of snapshot loading (and writing).
//!
//! Every way a snapshot file can be wrong has its own variant, because the
//! caller's remediation differs: a [`SnapshotError::BadMagic`] file was never
//! a snapshot, a [`SnapshotError::UnsupportedVersion`] one needs regenerating
//! with the current writer, a [`SnapshotError::GenerationMismatch`] one is
//! stale, and checksum failures mean bit rot or a torn write — rebuild from
//! the repository.

use std::fmt;
use std::io;

/// Why a snapshot could not be written or loaded.
///
/// Loading is fail-closed: hostile or damaged input always lands in one of
/// these variants, never in a panic and never in a silently wrong index.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(io::Error),
    /// The file does not start with the snapshot magic — it is not a snapshot.
    BadMagic,
    /// The file is a snapshot, but of a format revision this reader does not
    /// speak. There is no cross-version migration: regenerate the snapshot.
    UnsupportedVersion {
        /// The format version the file declares.
        found: u32,
    },
    /// The file ends before the data it promises: a header, section or footer
    /// extends past the end of the file. Typically a torn or partial write.
    Truncated {
        /// What was being read when the file ran out.
        detail: String,
    },
    /// A section's payload does not match the checksum recorded for it in the
    /// section directory: bytes inside that section were altered.
    SectionChecksum {
        /// Name of the damaged section.
        section: String,
    },
    /// The whole-file footer checksum does not match — bytes outside any
    /// section payload (header, padding) were altered.
    FooterChecksum,
    /// The section directory lacks a section the format requires.
    MissingSection {
        /// Name of the absent section.
        section: &'static str,
    },
    /// The bytes validate but do not decode into a well-formed snapshot
    /// (inconsistent counts, dangling parent pointers, invalid UTF-8 or
    /// enum discriminants). Always a writer bug or a deliberately crafted
    /// file; never produced by the shipped writer.
    Malformed {
        /// What failed to decode.
        detail: String,
    },
    /// The snapshot's generation stamp is not the one the caller requires —
    /// the snapshot describes a different revision of the repository.
    GenerationMismatch {
        /// The generation the caller expected.
        expected: u64,
        /// The generation recorded in the snapshot header.
        found: u64,
    },
}

impl SnapshotError {
    pub(crate) fn truncated(detail: impl Into<String>) -> Self {
        SnapshotError::Truncated {
            detail: detail.into(),
        }
    }

    pub(crate) fn malformed(detail: impl Into<String>) -> Self {
        SnapshotError::Malformed {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this reader speaks {})",
                    super::FORMAT_VERSION
                )
            }
            SnapshotError::Truncated { detail } => {
                write!(f, "snapshot file is truncated: {detail}")
            }
            SnapshotError::SectionChecksum { section } => {
                write!(f, "checksum mismatch in snapshot section `{section}`")
            }
            SnapshotError::FooterChecksum => write!(f, "snapshot footer checksum mismatch"),
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section `{section}`")
            }
            SnapshotError::Malformed { detail } => {
                write!(f, "snapshot is malformed: {detail}")
            }
            SnapshotError::GenerationMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot generation mismatch: expected {expected}, file has {found}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
