//! Versioned snapshot persistence: build once, load in milliseconds.
//!
//! Everything the serving engine builds at startup — the length-segmented
//! posting arena of the [`crate::NameIndex`] with its gram and length-segment
//! directories, the [`xsm_similarity::features::GramInterner`] table, one
//! [`xsm_similarity::features::NameFeatures`] per node (gram signatures, Myers
//! match vectors; word tokens stay lazy), per-tree centroids and the
//! repository's tree/node tables — is deterministic given the repository. This
//! module serializes all of it into **one self-describing file** so a restart
//! is a sequential read plus validation instead of a rebuild.
//!
//! ## File layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ magic "XSMSNAP1" (8 bytes)                                   │
//! │ format version  (u32 LE)                                     │
//! │ header length   (u32 LE)                                     │
//! │ header (serde JSON): generation stamp, q, counts, tree map,  │
//! │   section directory — name + offset + length + checksum      │
//! │ sections: fixed-width little-endian payloads, back to back   │
//! │ footer checksum (u64 LE, over the header bytes — the header  │
//! │   carries every section checksum, so it covers the body too) │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Section offsets are relative to the first section byte, so the (variable
//! length) header never perturbs them and the writer can lay sections out
//! before it knows the header's exact size. Serde is used **only** for the
//! small header; every section is a flat array of little-endian integers or a
//! length-prefixed string table, decoded by slicing — there is no per-entry
//! deserialization loop.
//!
//! ## Failure policy
//!
//! Loading is fail-closed: corrupt, truncated, version-skewed or
//! wrong-generation files return a typed [`SnapshotError`] — never a panic,
//! never a silently wrong index. Validation order is deliberate: magic, then
//! version, then header bounds/parse, then per-section bounds and checksums,
//! then the footer checksum (so a flipped byte is attributed to its section,
//! and header corruption that survives the JSON parse is still caught).
//!
//! ## Compatibility policy
//!
//! The format version is bumped on **any** byte-layout change; there is no
//! cross-version migration — a reader only accepts its own version
//! ([`FORMAT_VERSION`]) and rejects everything else as
//! [`SnapshotError::UnsupportedVersion`]. Snapshots are cheap to regenerate
//! from the repository, so compatibility machinery would buy nothing. The
//! golden test in `tests/snapshot_golden.rs` pins the layout byte-for-byte and
//! fails loudly on accidental drift.

mod error;
mod format;
mod reader;
mod writer;

pub use error::SnapshotError;
pub use format::{SectionEntry, SnapshotHeader, FORMAT_VERSION, SNAPSHOT_MAGIC};
pub use reader::{Snapshot, SnapshotReader};
pub use writer::SnapshotWriter;
