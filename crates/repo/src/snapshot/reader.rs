//! The snapshot reader: validate, then reconstruct in place.
//!
//! Validation happens in a fixed order so every failure is attributed
//! precisely: magic → version → header bounds → header parse → per-section
//! bounds → per-section checksums → footer checksum. Only after all of that
//! passes does reconstruction begin, and reconstruction failures (which imply
//! a buggy writer, since the checksums already validated) are
//! [`SnapshotError::Malformed`].
//!
//! Reconstruction is slicing, not parsing: every section is a flat
//! little-endian array decoded with bulk `u32` passes; the only per-entry work
//! is reassembling the `Box`ed feature fields and replaying tree edges —
//! integer appends, no hashing except one insert per distinct name when the
//! serialized exact-name map is rebuilt.

use std::path::Path;

use xsm_schema::{Cardinality, GlobalNodeId, NodeId, SchemaNode, SchemaTree, TreeId, TreeLabeling};
use xsm_similarity::features::GramInterner;

use crate::features::{FeatureColumns, FeatureStore};
use crate::index::{LenSegment, NameIndex};
use crate::repository::SchemaRepository;

use super::format::{
    checksum64, section, Cursor, SnapshotHeader, FOOTER_LEN, FORMAT_VERSION, NONE_SENTINEL,
    PREAMBLE_LEN, SNAPSHOT_MAGIC,
};
use super::SnapshotError;

/// A fully validated, fully reconstructed snapshot — everything
/// `MatchEngine` needs to start serving without a rebuild.
#[derive(Debug)]
pub struct Snapshot {
    /// The generation stamp recorded at write time.
    pub generation: u64,
    /// Local tree index → global tree id (identity for whole-repo snapshots).
    pub tree_map: Vec<TreeId>,
    /// The reconstructed repository, labelings included.
    pub repository: SchemaRepository,
    /// The reconstructed name index (posting arena, feature store, interner).
    pub index: NameIndex,
    /// Per-tree centroid nodes (`None` for empty trees), in local tree order.
    pub centroids: Vec<Option<GlobalNodeId>>,
}

impl Snapshot {
    /// Fail with [`SnapshotError::GenerationMismatch`] unless the snapshot
    /// carries exactly `expected` — the guard callers use to refuse serving a
    /// stale index for a repository that has moved on.
    pub fn expect_generation(self, expected: u64) -> Result<Self, SnapshotError> {
        if self.generation == expected {
            Ok(self)
        } else {
            Err(SnapshotError::GenerationMismatch {
                expected,
                found: self.generation,
            })
        }
    }
}

/// Loads snapshot files written by [`super::SnapshotWriter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotReader;

impl SnapshotReader {
    /// Read and reconstruct the snapshot at `path`: one sequential read, full
    /// validation, in-place reconstruction.
    pub fn read(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::read_bytes(&bytes)
    }

    /// [`SnapshotReader::read`] over an in-memory byte slice.
    pub fn read_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let (header, body) = validate(bytes)?;
        reconstruct(&header, body)
    }

    /// Validate `path` and return only its header — generation stamp, tree
    /// map, counts and section directory — without reconstructing anything.
    /// The full checksums still run: a peeked header is a trustworthy header.
    pub fn peek(path: impl AsRef<Path>) -> Result<SnapshotHeader, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::peek_bytes(&bytes)
    }

    /// [`SnapshotReader::peek`] over an in-memory byte slice.
    pub fn peek_bytes(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
        let (header, _) = validate(bytes)?;
        Ok(header)
    }
}

/// The shared validation pipeline: returns the parsed header and the section
/// region, or the precise error for what is wrong with the file.
fn validate(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() {
        return Err(SnapshotError::truncated(
            "file shorter than the magic number",
        ));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < PREAMBLE_LEN {
        return Err(SnapshotError::truncated("file ends inside the preamble"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let header_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let body_start = PREAMBLE_LEN
        .checked_add(header_len)
        .ok_or_else(|| SnapshotError::truncated("header length overflows"))?;
    if body_start + FOOTER_LEN > bytes.len() {
        return Err(SnapshotError::truncated(
            "file ends inside the header or footer",
        ));
    }
    let header_bytes = &bytes[PREAMBLE_LEN..body_start];
    let header_str = std::str::from_utf8(header_bytes)
        .map_err(|_| SnapshotError::malformed("header is not UTF-8"))?;
    let header: SnapshotHeader = serde_json::from_str(header_str)
        .map_err(|e| SnapshotError::malformed(format!("header does not parse: {e}")))?;

    // Section bounds first (truncation beats checksums in the report), then
    // per-section checksums (a flipped payload byte is attributed to its
    // section), then the footer, which covers the header bytes: the header
    // carries every section checksum, so a clean footer transitively vouches
    // for the whole file without a second pass over the body.
    let body = &bytes[body_start..bytes.len() - FOOTER_LEN];
    for entry in &header.sections {
        let end = entry.offset.checked_add(entry.len);
        if end.is_none() || end.unwrap() > body.len() as u64 {
            return Err(SnapshotError::truncated(format!(
                "section `{}` extends past the end of the file",
                entry.name
            )));
        }
    }
    for entry in &header.sections {
        let payload = &body[entry.offset as usize..(entry.offset + entry.len) as usize];
        if checksum64(payload) != entry.checksum {
            return Err(SnapshotError::SectionChecksum {
                section: entry.name.clone(),
            });
        }
    }
    let footer = &bytes[bytes.len() - FOOTER_LEN..];
    let recorded = u64::from_le_bytes([
        footer[0], footer[1], footer[2], footer[3], footer[4], footer[5], footer[6], footer[7],
    ]);
    if checksum64(header_bytes) != recorded {
        return Err(SnapshotError::FooterChecksum);
    }
    Ok((header, body))
}

/// Find an optional section's payload in the validated body.
fn maybe_section_payload<'a>(
    header: &SnapshotHeader,
    body: &'a [u8],
    name: &'static str,
) -> Option<&'a [u8]> {
    let entry = header.sections.iter().find(|e| e.name == name)?;
    Some(&body[entry.offset as usize..(entry.offset + entry.len) as usize])
}

/// Find a required section's payload in the validated body.
fn section_payload<'a>(
    header: &SnapshotHeader,
    body: &'a [u8],
    name: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let entry = header
        .sections
        .iter()
        .find(|e| e.name == name)
        .ok_or(SnapshotError::MissingSection { section: name })?;
    Ok(&body[entry.offset as usize..(entry.offset + entry.len) as usize])
}

/// A fixed-width section: interpret the whole payload as little-endian `u32`s.
fn flat_u32s(
    header: &SnapshotHeader,
    body: &[u8],
    name: &'static str,
) -> Result<Vec<u32>, SnapshotError> {
    let payload = section_payload(header, body, name)?;
    if payload.len() % 4 != 0 {
        return Err(SnapshotError::malformed(format!(
            "section `{name}` length {} is not a multiple of 4",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn reconstruct(header: &SnapshotHeader, body: &[u8]) -> Result<Snapshot, SnapshotError> {
    let tree_count = header.tree_count as usize;
    let node_count = header.node_count as usize;
    if header.tree_map.len() != tree_count {
        return Err(SnapshotError::malformed(format!(
            "tree map has {} entries for {tree_count} trees",
            header.tree_map.len()
        )));
    }

    // --- trees: names + per-tree node counts -------------------------------
    let mut cur = Cursor::new(
        section_payload(header, body, section::TREES)?,
        section::TREES,
    );
    let tree_names = cur.read_str_table(Some(tree_count), "tree names")?;
    let tree_sizes = cur.read_u32s(tree_count, "tree node counts")?;
    cur.finish()?;
    let total: u64 = tree_sizes.iter().map(|&n| n as u64).sum();
    if total != node_count as u64 {
        return Err(SnapshotError::malformed(format!(
            "tree node counts sum to {total}, header says {node_count}"
        )));
    }

    // --- tombstones (optional; absent from never-mutated snapshots) --------
    // Parsed early: the dead-node count below feeds the exact-map size check,
    // and the ids are re-applied to the index after assembly.
    let tombstoned: Vec<TreeId> = match maybe_section_payload(header, body, section::TOMBSTONES) {
        None => Vec::new(),
        Some(payload) => {
            let raw = flat_u32s(header, body, section::TOMBSTONES)?;
            debug_assert_eq!(payload.len(), raw.len() * 4);
            let mut trees = Vec::with_capacity(raw.len());
            for &t in &raw {
                if t as usize >= tree_count {
                    return Err(SnapshotError::malformed(format!(
                        "tombstones name unknown tree {t} ({tree_count} trees)"
                    )));
                }
                trees.push(TreeId(t));
            }
            if !trees.windows(2).all(|w| w[0] < w[1]) {
                return Err(SnapshotError::malformed(
                    "tombstoned trees must be strictly ascending".to_string(),
                ));
            }
            trees
        }
    };
    let dead_nodes: usize = tombstoned
        .iter()
        .map(|t| tree_sizes[t.index()] as usize)
        .sum();

    // --- node names + fixed-width metadata ---------------------------------
    let mut cur = Cursor::new(
        section_payload(header, body, section::NODE_NAMES)?,
        section::NODE_NAMES,
    );
    let node_names = cur.read_str_table(Some(node_count), "node names")?;
    cur.finish()?;

    let meta = section_payload(header, body, section::NODE_META)?;
    if meta.len() != node_count * 8 {
        return Err(SnapshotError::malformed(format!(
            "node_meta is {} bytes for {node_count} nodes (want {})",
            meta.len(),
            node_count * 8
        )));
    }

    // --- rebuild the forest from each tree's parent table ------------------
    // Slot order *is* insertion order in `SchemaTree`, and a parent always
    // precedes its children, so `from_parent_table` reproduces the tree
    // exactly — child order, depths, the lot — with the same validation a
    // replayed `add_root`/`add_child` sequence would apply.
    let mut trees = Vec::with_capacity(tree_count);
    let mut dense = 0usize;
    // The rebuild consumes the decoded name strings — `SchemaNode` takes
    // ownership, so handing over the table's allocations avoids a second
    // per-node copy.
    let mut node_names = node_names.into_iter();
    for (t, name) in tree_names.iter().enumerate() {
        let n = tree_sizes[t] as usize;
        let mut nodes = Vec::with_capacity(n);
        let mut parents = Vec::with_capacity(n);
        for _ in 0..n {
            let m = &meta[dense * 8..dense * 8 + 8];
            let parent = u32::from_le_bytes([m[0], m[1], m[2], m[3]]);
            let node_name = node_names.next().expect("table length validated above");
            nodes.push(decode_node(node_name, m[4], m[5], m[6])?);
            parents.push((parent != NONE_SENTINEL).then_some(NodeId(parent)));
            dense += 1;
        }
        let tree = SchemaTree::from_parent_table(name.clone(), nodes, &parents).map_err(|e| {
            SnapshotError::malformed(format!("tree `{name}`: parent table rejected: {e}"))
        })?;
        trees.push(tree);
    }

    // --- sparse node properties --------------------------------------------
    let mut cur = Cursor::new(
        section_payload(header, body, section::NODE_PROPS)?,
        section::NODE_PROPS,
    );
    let prop_count = cur.read_u32("property count")?;
    let tree_starts: Vec<u32> = {
        let mut starts = Vec::with_capacity(tree_count + 1);
        starts.push(0u32);
        for &n in &tree_sizes {
            starts.push(starts.last().unwrap() + n);
        }
        starts
    };
    for _ in 0..prop_count {
        let dense = cur.read_u32("property node")? as usize;
        let key_len = cur.read_u32("property key length")? as usize;
        let key = std::str::from_utf8(cur.take(key_len, "property key")?)
            .map_err(|_| SnapshotError::malformed("property key is not UTF-8"))?
            .to_string();
        let val_len = cur.read_u32("property value length")? as usize;
        let value = std::str::from_utf8(cur.take(val_len, "property value")?)
            .map_err(|_| SnapshotError::malformed("property value is not UTF-8"))?
            .to_string();
        let tree = tree_starts
            .partition_point(|&s| s as usize <= dense)
            .checked_sub(1)
            .filter(|&t| t < tree_count && dense < tree_starts[t + 1] as usize)
            .ok_or_else(|| {
                SnapshotError::malformed(format!("property refers to unknown node {dense}"))
            })?;
        let slot = dense as u32 - tree_starts[tree];
        trees[tree]
            .node_mut(NodeId(slot))
            .expect("slot bounds checked above")
            .set_property(key, value);
    }
    cur.finish()?;

    // --- labelings: flat label arrays, sliced by tree size -----------------
    let lab_flat = flat_u32s(header, body, section::LABELINGS)?;
    let lab_expected: usize = tree_sizes
        .iter()
        .map(|&n| if n == 0 { 0 } else { 6 * n as usize - 1 })
        .sum();
    if lab_flat.len() != lab_expected {
        return Err(SnapshotError::malformed(format!(
            "labelings has {} words, tree sizes require {lab_expected}",
            lab_flat.len()
        )));
    }
    let mut labelings = Vec::with_capacity(tree_count);
    let mut pos = 0usize;
    for &n in &tree_sizes {
        let n = n as usize;
        let euler_len = if n == 0 { 0 } else { 2 * n - 1 };
        let mut take = |len: usize| {
            let slice = lab_flat[pos..pos + len].to_vec();
            pos += len;
            slice
        };
        let depth = take(n);
        let first = take(n);
        let euler = take(euler_len);
        // The Euler tour indexes into the depth array (including inside the
        // sparse-table rebuild below), so out-of-range entries would panic —
        // reject them as a malformed writer instead.
        if let Some(&bad) = euler.iter().find(|&&v| v as usize >= n) {
            return Err(SnapshotError::malformed(format!(
                "labelings: euler tour refers to slot {bad} of a {n}-node tree"
            )));
        }
        let pre = take(n);
        let post = take(n);
        labelings.push(TreeLabeling::from_raw_parts(depth, first, euler, pre, post));
    }
    let repository = SchemaRepository::from_labeled_trees(trees, labelings);

    // --- the gram interner and per-node features ---------------------------
    if header.q == 0 {
        return Err(SnapshotError::malformed("header q must be >= 1"));
    }
    let mut cur = Cursor::new(
        section_payload(header, body, section::GRAM_TABLE)?,
        section::GRAM_TABLE,
    );
    let gram_table = cur.read_str_table(None, "gram table")?;
    cur.finish()?;
    let gram_count = gram_table.len();
    let interner = GramInterner::from_table(header.q as usize, gram_table);

    let mut cur = Cursor::new(
        section_payload(header, body, section::GRAM_SIGS)?,
        section::GRAM_SIGS,
    );
    let sig_offsets = cur.read_u32s(node_count + 1, "gram signature offsets")?;
    let sig_total = *sig_offsets.last().unwrap() as usize;
    // The flat signature/count/match-vector payloads stay as raw bytes here
    // and are decoded straight into each node's boxed slices below — at this
    // volume an intermediate decoded `Vec` is a second full copy.
    let sig_bytes = cur.take(
        sig_total
            .checked_mul(4)
            .ok_or_else(|| SnapshotError::malformed("gram signature count overflows"))?,
        "gram signatures",
    )?;
    cur.finish()?;
    check_offsets(&sig_offsets, sig_total, "gram signature offsets")?;

    // Counts come as one byte per entry, or as the wide u32 section when some
    // multiplicity overflowed a byte at write time; exactly one is present.
    let count_flat: Vec<u32> = match maybe_section_payload(header, body, section::GRAM_COUNTS) {
        Some(counts) => {
            if counts.len() != sig_total {
                return Err(SnapshotError::malformed(format!(
                    "gram_counts has {} bytes, gram_sigs has {sig_total} entries",
                    counts.len()
                )));
            }
            counts.iter().map(|&b| b as u32).collect()
        }
        None => {
            let wide = maybe_section_payload(header, body, section::GRAM_COUNTS_WIDE).ok_or(
                SnapshotError::MissingSection {
                    section: section::GRAM_COUNTS,
                },
            )?;
            if wide.len() != sig_total * 4 {
                return Err(SnapshotError::malformed(format!(
                    "gram_counts_wide has {} bytes, gram_sigs has {sig_total} entries",
                    wide.len()
                )));
            }
            wide.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }
    };

    let mut cur = Cursor::new(section_payload(header, body, section::PEQ)?, section::PEQ);
    let peq_offsets = cur.read_u32s(node_count + 1, "match-vector offsets")?;
    let peq_total = *peq_offsets.last().unwrap() as usize;
    let peq_bytes = cur.take(
        peq_total
            .checked_mul(12)
            .ok_or_else(|| SnapshotError::malformed("match-vector count overflows"))?,
        "match vectors",
    )?;
    cur.finish()?;
    check_offsets(&peq_offsets, peq_total, "match-vector offsets")?;

    // Per-node features stay *columnar*: a handful of bulk decodes here, and
    // the store materialises a node's `NameFeatures` on its first use. This is
    // what keeps reconstruction time proportional to bytes rather than to the
    // several boxed slices per node an eager build would allocate.
    let decode_u32 = |c: &[u8]| u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    let mut columns = FeatureColumns {
        sig_flat: sig_bytes.chunks_exact(4).map(decode_u32).collect(),
        count_flat,
        sig_offsets,
        peq_flat: Vec::with_capacity(peq_total),
        peq_offsets,
        ..FeatureColumns::default()
    };
    for e in peq_bytes.chunks_exact(12) {
        let c = decode_u32(e);
        let mask = u64::from_le_bytes([e[4], e[5], e[6], e[7], e[8], e[9], e[10], e[11]]);
        let c = char::from_u32(c).ok_or_else(|| {
            SnapshotError::malformed(format!("invalid character scalar {c:#x} in match vectors"))
        })?;
        columns.peq_flat.push((c, mask));
    }
    columns.lower_offsets.reserve_exact(node_count + 1);
    columns.lower_offsets.push(0);
    columns.orig_offsets.reserve_exact(node_count + 1);
    columns.orig_offsets.push(0);
    for (_, node) in repository.nodes() {
        let name = node.name.as_str();
        // One scan decides both the lowercase form and whether the original
        // spelling needs keeping; ASCII (the overwhelming case) skips the
        // Unicode lowercasing machinery entirely.
        if name.is_ascii() {
            if name.bytes().any(|b| b.is_ascii_uppercase()) {
                columns
                    .lower_blob
                    .extend(name.bytes().map(|b| b.to_ascii_lowercase() as char));
                columns.orig_blob.push_str(name);
            } else {
                columns.lower_blob.push_str(name);
            }
        } else {
            let lower = name.to_lowercase();
            if name != lower {
                columns.orig_blob.push_str(name);
            }
            columns.lower_blob.push_str(&lower);
        }
        columns.lower_offsets.push(columns.lower_blob.len() as u32);
        columns.orig_offsets.push(columns.orig_blob.len() as u32);
    }
    let store = FeatureStore::from_columns(interner, columns, tree_starts);

    // --- the index ---------------------------------------------------------
    // Decode and bounds-check the posting arena in one pass — it is the
    // largest index section, and a second sweep over it is pure cache misses.
    let arena_payload = section_payload(header, body, section::INDEX_ARENA)?;
    if arena_payload.len() % 4 != 0 {
        return Err(SnapshotError::malformed(format!(
            "section `{}` length {} is not a multiple of 4",
            section::INDEX_ARENA,
            arena_payload.len()
        )));
    }
    let mut arena = Vec::with_capacity(arena_payload.len() / 4);
    for c in arena_payload.chunks_exact(4) {
        let d = decode_u32(c);
        if d as usize >= node_count {
            return Err(SnapshotError::malformed(format!(
                "posting arena refers to unknown node {d}"
            )));
        }
        arena.push(d);
    }
    // The positional sidecar is entry-for-entry parallel to the arena; no
    // value validation is needed (any packed interval is a legal interval —
    // the filter treats clamped halves as "inexact, keep").
    let arena_pos = flat_u32s(header, body, section::INDEX_POS)?;
    if arena_pos.len() != arena.len() {
        return Err(SnapshotError::malformed(format!(
            "index_pos has {} entries for a {}-posting arena",
            arena_pos.len(),
            arena.len()
        )));
    }
    let seg_raw = flat_u32s(header, body, section::INDEX_SEGMENTS)?;
    if seg_raw.len() % 3 != 0 {
        return Err(SnapshotError::malformed(format!(
            "index_segments has {} words, not a multiple of 3",
            seg_raw.len()
        )));
    }
    let segments: Vec<LenSegment> = seg_raw
        .chunks_exact(3)
        .map(|c| LenSegment {
            len: c[0],
            start: c[1],
            end: c[2],
        })
        .collect();
    if let Some(bad) = segments
        .iter()
        .find(|s| s.start > s.end || s.end as usize > arena.len())
    {
        return Err(SnapshotError::malformed(format!(
            "length segment [{}, {}) exceeds the arena ({} postings)",
            bad.start,
            bad.end,
            arena.len()
        )));
    }
    let gram_segments = flat_u32s(header, body, section::INDEX_GRAM_SEGMENTS)?;
    if gram_segments.len() != gram_count + 1
        || gram_segments.last().copied().unwrap_or(0) as usize != segments.len()
    {
        return Err(SnapshotError::malformed(format!(
            "gram segment directory has {} entries for {gram_count} grams / {} segments",
            gram_segments.len(),
            segments.len()
        )));
    }
    let lens = flat_u32s(header, body, section::INDEX_LENS)?;
    if lens.len() != node_count {
        return Err(SnapshotError::malformed(format!(
            "index_lens has {} entries for {node_count} nodes",
            lens.len()
        )));
    }

    // The exact-name map: one insert per distinct name. Every node carries
    // exactly one name, so the posting lists partition the node set — their
    // lengths must sum to the node count.
    let mut cur = Cursor::new(
        section_payload(header, body, section::EXACT_NAMES)?,
        section::EXACT_NAMES,
    );
    let exact_names = cur.read_str_table(None, "exact names")?;
    cur.finish()?;
    let mut cur = Cursor::new(
        section_payload(header, body, section::EXACT_NODES)?,
        section::EXACT_NODES,
    );
    let exact_offsets = cur.read_u32s(exact_names.len() + 1, "exact-name offsets")?;
    let exact_total = *exact_offsets.last().unwrap() as usize;
    let exact_flat = cur.read_u32s(exact_total, "exact-name postings")?;
    cur.finish()?;
    check_offsets(&exact_offsets, exact_total, "exact-name offsets")?;
    // Tombstoned nodes are removed from the exact map at delete time, so the
    // lists partition the *alive* node set.
    if exact_total != node_count - dead_nodes {
        return Err(SnapshotError::malformed(format!(
            "exact-name postings cover {exact_total} nodes, header says {node_count} \
             ({dead_nodes} tombstoned)"
        )));
    }
    let dense_ids: Vec<GlobalNodeId> = {
        let mut ids = Vec::with_capacity(node_count);
        for (t, &n) in tree_sizes.iter().enumerate() {
            for slot in 0..n {
                ids.push(GlobalNodeId::new(TreeId(t as u32), NodeId(slot)));
            }
        }
        ids
    };
    let mut exact = std::collections::HashMap::with_capacity(exact_names.len());
    for (i, name) in exact_names.into_iter().enumerate() {
        let range = exact_offsets[i] as usize..exact_offsets[i + 1] as usize;
        let mut nodes = Vec::with_capacity(range.len());
        for &dense in &exact_flat[range] {
            let id = dense_ids.get(dense as usize).ok_or_else(|| {
                SnapshotError::malformed(format!(
                    "exact-name postings refer to unknown node {dense}"
                ))
            })?;
            nodes.push(*id);
        }
        if exact.insert(name, nodes).is_some() {
            return Err(SnapshotError::malformed(
                "exact-name table repeats a name".to_string(),
            ));
        }
    }

    let mut index = NameIndex::from_parts(
        exact,
        arena,
        arena_pos,
        segments,
        gram_segments,
        lens,
        store,
        header.q as usize,
    );
    // Re-mark the dead trees: the arena still holds their postings (the writer
    // serializes the physical state), so the live sizes and emission filters
    // must be reconstructed exactly as the mutating engine had them.
    if !tombstoned.is_empty() {
        index.apply_tombstones(&tombstoned);
    }

    // --- centroids ---------------------------------------------------------
    let centroid_slots = flat_u32s(header, body, section::CENTROIDS)?;
    if centroid_slots.len() != tree_count {
        return Err(SnapshotError::malformed(format!(
            "centroids has {} entries for {tree_count} trees",
            centroid_slots.len()
        )));
    }
    let mut centroids = Vec::with_capacity(tree_count);
    for (t, &slot) in centroid_slots.iter().enumerate() {
        if slot == NONE_SENTINEL {
            centroids.push(None);
        } else if (slot as u64) < tree_sizes[t] as u64 {
            centroids.push(Some(GlobalNodeId::new(TreeId(t as u32), NodeId(slot))));
        } else {
            return Err(SnapshotError::malformed(format!(
                "tree {t} centroid {slot} is outside the tree ({} nodes)",
                tree_sizes[t]
            )));
        }
    }

    Ok(Snapshot {
        generation: header.generation,
        tree_map: header.tree_map.iter().map(|&t| TreeId(t)).collect(),
        repository,
        index,
        centroids,
    })
}

/// Offsets must start at 0, end at `total` and never decrease.
fn check_offsets(offsets: &[u32], total: usize, what: &str) -> Result<(), SnapshotError> {
    let monotonic = offsets.windows(2).all(|w| w[0] <= w[1]);
    if offsets.first() != Some(&0)
        || !monotonic
        || offsets.last().copied().unwrap_or(0) as usize != total
    {
        return Err(SnapshotError::malformed(format!(
            "{what} are not a monotonic prefix-sum table"
        )));
    }
    Ok(())
}

fn decode_node(
    name: String,
    kind: u8,
    cardinality: u8,
    datatype: u8,
) -> Result<SchemaNode, SnapshotError> {
    let mut node = match kind {
        0 => SchemaNode::element(name),
        1 => SchemaNode::attribute(name),
        other => {
            return Err(SnapshotError::malformed(format!(
                "unknown node kind discriminant {other}"
            )))
        }
    };
    node.cardinality = match cardinality {
        0 => Cardinality::One,
        1 => Cardinality::Optional,
        2 => Cardinality::OneOrMore,
        3 => Cardinality::ZeroOrMore,
        other => {
            return Err(SnapshotError::malformed(format!(
                "unknown cardinality discriminant {other}"
            )))
        }
    };
    node.datatype = match datatype {
        0 => None,
        n => Some(
            *xsm_schema::XsdType::all()
                .get(n as usize - 1)
                .ok_or_else(|| {
                    SnapshotError::malformed(format!("unknown datatype discriminant {n}"))
                })?,
        ),
    };
    Ok(node)
}
