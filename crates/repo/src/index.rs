//! Name indexes over a repository: exact lookup and q-gram approximate lookup.
//!
//! Bellflower's element matcher conceptually compares *every* personal-schema element
//! with *every* repository element. The paper points to "approximate string joins"
//! (Gravano et al.) as the standard way to implement such matchers efficiently; the
//! [`NameIndex`] is that substrate: an inverted index from lowercased names (exact)
//! and from character q-grams (approximate candidate retrieval with a count filter).
//!
//! ## Filter–verify layout
//!
//! The gram side is a **filter–verify pipeline** over integer postings:
//!
//! * Postings live in one flat arena of dense node indices (ascending, which is
//!   also ascending [`GlobalNodeId`] order), grouped by gram and **segmented by
//!   name character length**. A [`LengthWindow`] derived from the caller's
//!   similarity floor — the same length-difference bound
//!   `xsm_similarity::compare_string_fuzzy_bounded` exploits — skips whole
//!   segments before any merging: a candidate whose length already caps its fuzzy
//!   similarity below the floor is never touched.
//! * The surviving segments are merged with a **T-occurrence count filter**
//!   (`needed = ceil(min_overlap_fraction · distinct query grams)`), by an
//!   algorithm chosen from the in-window volume: dense `u8`-counter **ScanCount**
//!   for small volumes; for large ones **ScanProbe**, which exploits the length
//!   bucketing directly — a candidate has exactly one name length, so per length
//!   bucket the `T − 1` heaviest segments can be excluded from scanning entirely
//!   (a candidate absent from every short segment tops out at `T − 1`
//!   occurrences) and are only binary-probed for candidates that already
//!   surfaced in the short segments. The heaviest postings of common grams are
//!   therefore never merged at all. Classic heap-based **MergeSkip** (Li et al.)
//!   with early termination is also implemented and selectable; measurement
//!   showed length segmentation fragments the runs enough that its skip
//!   advantage evaporates (one cursor per segment, `T ≪ runs`), which is exactly
//!   why ScanProbe replaces it as the large-volume default.
//! * Every merge reuses caller-owned [`CandidateScratch`]; steady-state
//!   generation allocates only the output `Vec`.
//!
//! Under an infinite window the result is **exactly** the classic merge-everything
//! count filter ([`NameIndex::lookup_approximate_baseline`], kept as the reference
//! and bench baseline): same ids, same order — proven by the property suite in
//! `tests/candidate_equivalence.rs`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use xsm_schema::GlobalNodeId;
use xsm_similarity::edit::normalized_similarity;

use crate::features::FeatureStore;
use crate::repository::SchemaRepository;

// The ScanCount-vs-ScanProbe volume threshold lives in `crate::simd`
// (`scan_count_max_volume`): it depends on whether the vectorized counter
// core is active on this host.

/// Segments smaller than this are never designated probe-only: excluding a tiny
/// segment saves almost no scanning but still charges every surviving candidate
/// of that length a binary probe.
const PROBE_MIN_SEGMENT: usize = 16;

/// A length filter on candidate names, derived from the caller's similarity floor.
///
/// The fuzzy kernel normalizes the edit distance by the longer name, and the
/// distance is at least the length difference, so a candidate of length `c` can
/// score at most `1 - |q - c| / max(q, c)` against a query of length `q`. A window
/// admits exactly the lengths whose bound still reaches the floor — evaluated with
/// the *same* float expression the kernel uses
/// ([`normalized_similarity`]), so the filter is conservative by construction:
/// nothing a later `score >= floor` check would keep is ever dropped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LengthWindow {
    /// Every candidate length is admitted (the classic, unfiltered lookup).
    #[default]
    Infinite,
    /// Admit only lengths whose length-difference similarity bound can still reach
    /// this floor against the query name.
    FuzzyFloor(f64),
}

impl LengthWindow {
    /// A window for a similarity floor; floors at or below zero admit everything
    /// and collapse to [`LengthWindow::Infinite`].
    pub fn fuzzy_floor(floor: f64) -> Self {
        if floor <= 0.0 {
            LengthWindow::Infinite
        } else {
            LengthWindow::FuzzyFloor(floor)
        }
    }

    /// Whether the window admits every length.
    pub fn is_infinite(&self) -> bool {
        matches!(self, LengthWindow::Infinite)
    }

    /// Whether a candidate name of `candidate_chars` characters can still reach
    /// the window's floor against a query of `query_chars` characters.
    pub fn admits(&self, query_chars: usize, candidate_chars: usize) -> bool {
        match *self {
            LengthWindow::Infinite => true,
            LengthWindow::FuzzyFloor(floor) => {
                normalized_similarity(
                    query_chars.abs_diff(candidate_chars),
                    query_chars,
                    candidate_chars,
                ) >= floor
            }
        }
    }
}

/// One approximate-candidate request against a [`NameIndex`]: the query name, the
/// T-occurrence overlap requirement, and the length filter.
#[derive(Debug, Clone, Copy)]
pub struct CandidateQuery<'a> {
    /// The query name (matched case-insensitively, like every kernel).
    pub name: &'a str,
    /// Minimum fraction of the query's distinct q-grams a candidate must share.
    pub min_overlap_fraction: f64,
    /// Which candidate name lengths are admitted at all.
    pub length_window: LengthWindow,
}

impl<'a> CandidateQuery<'a> {
    /// A query with an infinite length window (exact superset of the classic
    /// lookup's behaviour).
    pub fn new(name: &'a str, min_overlap_fraction: f64) -> Self {
        CandidateQuery {
            name,
            min_overlap_fraction,
            length_window: LengthWindow::Infinite,
        }
    }

    /// Builder-style length-window override.
    pub fn with_length_window(mut self, window: LengthWindow) -> Self {
        self.length_window = window;
        self
    }
}

/// A query name resolved against one index's interner **once**: the sorted ids of
/// its known grams, the distinct-gram denominator of the count filter, and the
/// query's character length (the length-window anchor). Candidate lookup, volume
/// estimation and the query planner all consume the same resolution instead of
/// re-walking the name's grams per call site.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    known: Vec<u32>,
    /// Packed `first << 16 | last` occurrence positions, parallel to `known`
    /// (the positional q-gram filter's query side).
    known_pos: Vec<u32>,
    distinct: usize,
    char_len: usize,
}

impl ResolvedQuery {
    /// Sorted, deduplicated interned ids of the query grams present in the index.
    pub fn known_grams(&self) -> &[u32] {
        &self.known
    }

    /// Number of distinct query grams (known + unknown — the count filter's
    /// denominator).
    pub fn distinct_grams(&self) -> usize {
        self.distinct
    }

    /// Character length of the lowercased query name.
    pub fn char_len(&self) -> usize {
        self.char_len
    }
}

/// Which merge algorithm [`NameIndex::lookup_candidates_counted`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Choose from the in-window posting volume (the serving default):
    /// ScanCount at small volumes, ScanProbe beyond.
    #[default]
    Auto,
    /// Force the dense-counter ScanCount merge over every in-window segment.
    ScanCount,
    /// Force the heap-based MergeSkip merge.
    MergeSkip,
    /// Force the long-segment-probing ScanCount merge.
    ScanProbe,
}

/// The merge algorithm that actually served a lookup (reported in
/// [`CandidateStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeAlgorithm {
    /// Dense-counter scan over every in-window segment.
    #[default]
    ScanCount,
    /// Heap-based merge with skip-ahead.
    MergeSkip,
    /// Dense-counter scan over the short segments, binary probes into the
    /// per-length heavy segments.
    ScanProbe,
}

/// Reusable working memory for candidate generation. One instance per worker
/// thread makes steady-state generation allocate nothing but the output `Vec`:
/// the ScanCount counters persist (reset via the touched list, not wholesale),
/// and the MergeSkip heap and cursor table keep their capacity across queries.
#[derive(Debug, Clone, Default)]
pub struct CandidateScratch {
    /// Dense per-node occurrence counters (ScanCount); only `touched` entries are
    /// ever non-zero between queries.
    counts: Vec<u8>,
    /// Dense node indices whose counter was incremented this query.
    touched: Vec<u32>,
    /// Merge cursors: `(position, end)` into the index's posting arena.
    runs: Vec<(u32, u32)>,
    /// MergeSkip frontier: `Reverse((posting value, run index))`.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Run indices popped in the current MergeSkip round.
    popped: Vec<u32>,
    /// ScanProbe: in-window segments as `(len, start, end)` awaiting partition.
    segs: Vec<(u32, u32, u32)>,
    /// ScanProbe: the probe-only segments, sorted by length.
    long: Vec<(u32, u32, u32)>,
    /// Surviving dense node indices.
    out: Vec<u32>,
}

/// Work accounting of one candidate lookup (reported by the `candidates` bench).
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateStats {
    /// Distinct nodes whose occurrence count was actually examined (ScanCount:
    /// counter touches; ScanProbe: counter touches in the short segments;
    /// MergeSkip: distinct frontier values processed — skipped and probe-only
    /// postings are never examined).
    pub candidates_examined: usize,
    /// Posting entries never merged: MergeSkip binary-search jumps plus the full
    /// volume of ScanProbe's probe-only segments.
    pub postings_skipped: usize,
    /// Length segments excluded by the window before merging.
    pub segments_skipped: usize,
    /// Binary probes into probe-only segments (ScanProbe).
    pub probes: usize,
    /// Summed posting volume of the in-window segments.
    pub volume_in_window: usize,
    /// Summed posting volume of all the query grams' segments.
    pub volume_total: usize,
    /// Count-filter survivors rejected by the positional q-gram filter (their
    /// matching grams were all displaced beyond the length-window edit bound).
    pub positional_rejections: usize,
    /// The merge algorithm that served the query.
    pub algorithm: MergeAlgorithm,
}

/// One length-homogeneous slice of a gram's posting list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LenSegment {
    /// Character length of every name in the segment.
    pub(crate) len: u32,
    /// Arena range of the segment's postings (dense node indices, ascending).
    pub(crate) start: u32,
    pub(crate) end: u32,
}

/// Inverted indexes from names and q-grams to repository nodes, plus the node
/// feature store the similarity kernels score against.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    /// lowercase name → nodes carrying exactly that name.
    exact: HashMap<String, Vec<GlobalNodeId>>,
    /// All posting entries (dense node indices into the store), grouped by gram,
    /// then by name length; ascending within each segment.
    arena: Vec<u32>,
    /// Packed `first << 16 | last` occurrence positions of the posting's gram
    /// within the posting's name, parallel to `arena` (the positional q-gram
    /// filter's corpus side). Serialized with the arena so snapshot loads keep
    /// the filter without re-deriving per-name gram positions.
    arena_pos: Vec<u32>,
    /// Length-segment directory; gram `g` owns
    /// `segments[gram_segments[g] .. gram_segments[g + 1]]`. After appends a
    /// gram may own several segments of the *same* length (the pre-append run
    /// and one tail run per append, older first — dense order is preserved
    /// across them); compaction merges them back into one.
    segments: Vec<LenSegment>,
    gram_segments: Vec<u32>,
    /// Tombstoned postings per segment, parallel to `segments`: the live size
    /// of segment `i` is `(end - start) - seg_dead[i]`. Volume estimates and
    /// the planner read live sizes; the merge algorithms skip dead candidates
    /// at emission time; compaction rewrites the arena and zeroes this.
    seg_dead: Vec<u32>,
    /// Total tombstoned postings in the arena (`seg_dead` summed).
    dead_postings: usize,
    /// Character length of every node's lowercased name, by dense index
    /// (ScanProbe reads a candidate's length to pick its probe segments).
    lens: Vec<u32>,
    /// Per-node features and the shared gram interner.
    store: FeatureStore,
    q: usize,
}

/// Build the exact lowercase-name map over a feature store. Keyed lookups
/// before insertion keep it to one owned `String` per *distinct* name —
/// repositories repeat names heavily, and an `entry(name.to_string())` loop
/// would allocate per node instead.
fn exact_name_map(store: &FeatureStore) -> HashMap<String, Vec<GlobalNodeId>> {
    let mut exact: HashMap<String, Vec<GlobalNodeId>> = HashMap::with_capacity(store.len() / 2 + 1);
    for (id, features) in store.iter() {
        match exact.get_mut(&*features.lower) {
            Some(nodes) => nodes.push(id),
            None => {
                exact.insert(features.lower.to_string(), vec![id]);
            }
        }
    }
    exact
}

impl NameIndex {
    /// Build the index over all nodes of a repository with the default `q = 3`.
    pub fn build(repo: &SchemaRepository) -> Self {
        Self::build_with_q(repo, 3)
    }

    /// Build with an explicit q-gram length (`q >= 1`). This also builds the
    /// repository's [`FeatureStore`], so every node's name features (and the shared
    /// gram interner) are computed exactly once, here.
    pub fn build_with_q(repo: &SchemaRepository, q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        let store = FeatureStore::build(repo, q);
        let exact = exact_name_map(&store);
        let gram_count = store.interner().len();
        let mut per_gram: Vec<Vec<(u32, u32)>> = vec![Vec::new(); gram_count];
        let mut lens: Vec<u32> = Vec::with_capacity(store.len());
        let mut total_postings = 0usize;
        for (dense, (_, features)) in store.iter().enumerate() {
            lens.push(features.char_len() as u32);
            // The signature is already sorted + deduplicated, so each node lands at
            // most once per posting list, in canonical node order. Fresh builds
            // carry per-gram positions parallel to the signature.
            debug_assert_eq!(features.gram_sig().len(), features.gram_positions().len());
            for (&gram_id, &pos) in features.gram_sig().iter().zip(features.gram_positions()) {
                per_gram[gram_id as usize].push((dense as u32, pos));
                total_postings += 1;
            }
        }
        let mut arena: Vec<u32> = Vec::with_capacity(total_postings);
        let mut arena_pos: Vec<u32> = Vec::with_capacity(total_postings);
        let mut segments: Vec<LenSegment> = Vec::new();
        let mut gram_segments: Vec<u32> = Vec::with_capacity(gram_count + 1);
        gram_segments.push(0);
        for list in &mut per_gram {
            // Stable by-length sort keeps the dense indices ascending within each
            // segment (they were pushed in canonical order).
            list.sort_by_key(|&(dense, _)| lens[dense as usize]);
            let mut k = 0;
            while k < list.len() {
                let len = lens[list[k].0 as usize];
                let start = arena.len() as u32;
                while k < list.len() && lens[list[k].0 as usize] == len {
                    arena.push(list[k].0);
                    arena_pos.push(list[k].1);
                    k += 1;
                }
                segments.push(LenSegment {
                    len,
                    start,
                    end: arena.len() as u32,
                });
            }
            gram_segments.push(segments.len() as u32);
        }
        let seg_dead = vec![0; segments.len()];
        NameIndex {
            exact,
            arena,
            arena_pos,
            segments,
            gram_segments,
            seg_dead,
            dead_postings: 0,
            lens,
            store,
            q,
        }
    }

    /// Reassemble an index from snapshot parts. The parts must be a dump of a
    /// previously built index over the same repository the `store` covers —
    /// including the exact-name map, rebuilt by the caller with one insert per
    /// distinct name (hashing every node again is measurable at load time).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        exact: HashMap<String, Vec<GlobalNodeId>>,
        arena: Vec<u32>,
        arena_pos: Vec<u32>,
        segments: Vec<LenSegment>,
        gram_segments: Vec<u32>,
        lens: Vec<u32>,
        store: FeatureStore,
        q: usize,
    ) -> Self {
        debug_assert_eq!(arena.len(), arena_pos.len());
        let seg_dead = vec![0; segments.len()];
        NameIndex {
            exact,
            arena,
            arena_pos,
            segments,
            gram_segments,
            seg_dead,
            dead_postings: 0,
            lens,
            store,
            q,
        }
    }

    /// Replay a persisted tombstone set onto a freshly reassembled index (the
    /// snapshot-load path): mark the trees dead in the store and recount the
    /// per-segment dead postings in one arena pass. The exact-name map needs no
    /// work — it was serialized already cleaned of dead nodes.
    pub(crate) fn apply_tombstones(&mut self, trees: &[xsm_schema::TreeId]) {
        for &tid in trees {
            self.store.tombstone_tree(tid);
        }
        self.dead_postings = 0;
        for (i, seg) in self.segments.iter().enumerate() {
            let dead = self.arena[seg.start as usize..seg.end as usize]
                .iter()
                .filter(|&&dense| self.store.is_dead(dense as usize))
                .count();
            self.seg_dead[i] = dead as u32;
            self.dead_postings += dead;
        }
    }

    /// Append one tree's nodes to the index: the [`FeatureStore`] grows at the
    /// tail, the new postings extend the arena as new length-segmented runs,
    /// and the per-gram segment *directory* is remerged (metadata-sized work —
    /// existing arena entries, dense indices and feature slots are untouched).
    /// `tid` must be the next tree index of the repository the index covers.
    pub fn append_tree(&mut self, tid: xsm_schema::TreeId, tree: &xsm_schema::SchemaTree) {
        let old_total = self.store.len();
        self.store.append_tree(tid, tree);
        let new_total = self.store.len();

        // Per-node lengths, exact-name postings, and the new per-gram lists.
        let mut per_gram: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        let ids = self.store.node_ids();
        for (dense, &id) in ids.iter().enumerate().take(new_total).skip(old_total) {
            let features = self.store.features_at(dense);
            self.lens.push(features.char_len() as u32);
            debug_assert_eq!(features.gram_sig().len(), features.gram_positions().len());
            for (&gram_id, &pos) in features.gram_sig().iter().zip(features.gram_positions()) {
                per_gram
                    .entry(gram_id)
                    .or_default()
                    .push((dense as u32, pos));
            }
            let lower = &*features.lower;
            match self.exact.get_mut(lower) {
                // Dense order is ascending id order, so pushes keep the
                // posting lists sorted.
                Some(nodes) => nodes.push(id),
                None => {
                    self.exact.insert(lower.to_string(), vec![id]);
                }
            }
        }

        // Tail-extend the arena with the new runs, one segment per
        // (gram, length) among the appended nodes.
        let mut new_segments: HashMap<u32, Vec<(LenSegment, usize)>> =
            HashMap::with_capacity(per_gram.len());
        for (gram_id, mut list) in per_gram {
            list.sort_by_key(|&(dense, _)| self.lens[dense as usize]);
            let mut segs: Vec<(LenSegment, usize)> = Vec::new();
            let mut k = 0;
            while k < list.len() {
                let len = self.lens[list[k].0 as usize];
                let start = self.arena.len() as u32;
                while k < list.len() && self.lens[list[k].0 as usize] == len {
                    self.arena.push(list[k].0);
                    self.arena_pos.push(list[k].1);
                    k += 1;
                }
                segs.push((
                    LenSegment {
                        len,
                        start,
                        end: self.arena.len() as u32,
                    },
                    0,
                ));
            }
            new_segments.insert(gram_id, segs);
        }

        // Remerge the segment directory: per gram, old segments and the new
        // tail run ordered by length, the old segment first on equal lengths
        // (old dense indices < new ones, so ascending order is preserved
        // across the same-length pair).
        let gram_count = self.store.interner().len();
        let mut segments = Vec::with_capacity(self.segments.len() + new_segments.len());
        let mut seg_dead = Vec::with_capacity(segments.capacity());
        let mut gram_segments = Vec::with_capacity(gram_count + 1);
        gram_segments.push(0u32);
        let old_gram_count = self.gram_segments.len() - 1;
        for gram_id in 0..gram_count {
            let old = if gram_id < old_gram_count {
                let (s, e) = (
                    self.gram_segments[gram_id] as usize,
                    self.gram_segments[gram_id + 1] as usize,
                );
                s..e
            } else {
                0..0
            };
            let mut old_iter = old.clone().peekable();
            let mut new_iter = new_segments
                .remove(&(gram_id as u32))
                .unwrap_or_default()
                .into_iter()
                .peekable();
            loop {
                let take_old = match (old_iter.peek(), new_iter.peek()) {
                    (Some(&oi), Some((nseg, _))) => self.segments[oi].len <= nseg.len,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_old {
                    let oi = old_iter.next().expect("peeked");
                    segments.push(self.segments[oi]);
                    seg_dead.push(self.seg_dead[oi]);
                } else {
                    let (seg, dead) = new_iter.next().expect("peeked");
                    segments.push(seg);
                    seg_dead.push(dead as u32);
                }
            }
            gram_segments.push(segments.len() as u32);
        }
        self.segments = segments;
        self.seg_dead = seg_dead;
        self.gram_segments = gram_segments;
    }

    /// Tombstone tree `tid`: its nodes stop being returned by every lookup, the
    /// exact-name map drops them eagerly, and their postings are recorded dead
    /// per segment (filtered at candidate emission until a [`NameIndex::compact`]
    /// physically reclaims them). Returns the number of postings tombstoned, or
    /// `None` when the tree is unknown or already dead.
    pub fn tombstone_tree(&mut self, tid: xsm_schema::TreeId) -> Option<usize> {
        let range = self.store.tombstone_tree(tid)?;
        let ids = self.store.node_ids();
        let mut killed = 0usize;
        for dense in range {
            let features = self.store.features_at(dense);
            let len = self.lens[dense];
            // Drop the node from its exact-name posting list (kept sorted, so
            // one binary search finds it).
            let id = ids[dense];
            if let Some(nodes) = self.exact.get_mut(&*features.lower) {
                if let Ok(pos) = nodes.binary_search(&id) {
                    nodes.remove(pos);
                }
                if nodes.is_empty() {
                    self.exact.remove(&*features.lower);
                }
            }
            // Record the posting dead in each gram's segment of this length
            // that contains it (same-length twins hold disjoint dense ranges,
            // so exactly one probe succeeds).
            for &gram_id in features.gram_sig() {
                let (seg_start, seg_end) = self.segment_range(gram_id);
                for i in seg_start..seg_end {
                    let seg = self.segments[i];
                    if seg.len != len {
                        continue;
                    }
                    if self.arena[seg.start as usize..seg.end as usize]
                        .binary_search(&(dense as u32))
                        .is_ok()
                    {
                        self.seg_dead[i] += 1;
                        killed += 1;
                        break;
                    }
                }
            }
        }
        self.dead_postings += killed;
        Some(killed)
    }

    /// LSM-style compaction: rewrite the posting arena alive-only, merging a
    /// gram's same-length segment twins (accumulated by appends) back into one
    /// run each. Dense indices are *never* renumbered — dead feature slots
    /// stay allocated so surviving postings keep their meaning — which makes
    /// compaction a physical-layout operation with no logical effect (and no
    /// generation bump). Returns the number of postings reclaimed.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.dead_postings;
        let mut arena = Vec::with_capacity(self.arena.len() - self.dead_postings);
        let mut arena_pos = Vec::with_capacity(arena.capacity());
        let mut segments = Vec::with_capacity(self.segments.len());
        let mut gram_segments = Vec::with_capacity(self.gram_segments.len());
        gram_segments.push(0u32);
        for gram_id in 0..self.gram_segments.len() - 1 {
            let (seg_start, seg_end) = self.segment_range(gram_id as u32);
            let mut i = seg_start;
            while i < seg_end {
                let len = self.segments[i].len;
                let start = arena.len() as u32;
                // Adjacent directory entries of equal length are the old run
                // followed by append runs, already ascending across the group.
                while i < seg_end && self.segments[i].len == len {
                    let seg = self.segments[i];
                    for k in seg.start as usize..seg.end as usize {
                        let dense = self.arena[k];
                        if !self.store.is_dead(dense as usize) {
                            arena.push(dense);
                            arena_pos.push(self.arena_pos[k]);
                        }
                    }
                    i += 1;
                }
                if arena.len() as u32 > start {
                    segments.push(LenSegment {
                        len,
                        start,
                        end: arena.len() as u32,
                    });
                }
            }
            gram_segments.push(segments.len() as u32);
        }
        self.arena = arena;
        self.arena_pos = arena_pos;
        self.segments = segments;
        self.gram_segments = gram_segments;
        self.seg_dead = vec![0; self.segments.len()];
        self.dead_postings = 0;
        reclaimed
    }

    /// Tombstoned postings still occupying the arena.
    pub fn dead_postings(&self) -> usize {
        self.dead_postings
    }

    /// Fraction of the arena occupied by tombstoned postings (0 when empty) —
    /// the dead-weight measure compaction thresholds are expressed in.
    pub fn dead_posting_fraction(&self) -> f64 {
        if self.arena.is_empty() {
            0.0
        } else {
            self.dead_postings as f64 / self.arena.len() as f64
        }
    }

    /// The tombstoned trees, ascending — what a snapshot persists.
    pub fn tombstoned_trees(&self) -> &[xsm_schema::TreeId] {
        self.store.dead_trees()
    }

    /// The exact lowercase-name map, for serialization. Hash-ordered — a
    /// deterministic writer must sort before laying it out.
    pub(crate) fn exact_raw(&self) -> &HashMap<String, Vec<GlobalNodeId>> {
        &self.exact
    }

    /// The flat posting arena (dense node indices), for serialization.
    pub(crate) fn arena_raw(&self) -> &[u32] {
        &self.arena
    }

    /// Packed gram positions parallel to the arena, for serialization.
    pub(crate) fn arena_pos_raw(&self) -> &[u32] {
        &self.arena_pos
    }

    /// The length-segment directory, for serialization.
    pub(crate) fn segments_raw(&self) -> &[LenSegment] {
        &self.segments
    }

    /// The per-gram segment-directory offsets, for serialization.
    pub(crate) fn gram_segments_raw(&self) -> &[u32] {
        &self.gram_segments
    }

    /// Character length of every node's lowercased name, for serialization.
    pub(crate) fn lens_raw(&self) -> &[u32] {
        &self.lens
    }

    /// Number of distinct names indexed.
    pub fn distinct_names(&self) -> usize {
        self.exact.len()
    }

    /// The per-node feature store (shared gram interner, one `NameFeatures` per
    /// node) built alongside the index.
    pub fn features(&self) -> &FeatureStore {
        &self.store
    }

    /// Nodes whose name equals `name` (case-insensitive).
    pub fn lookup_exact(&self, name: &str) -> &[GlobalNodeId] {
        self.exact
            .get(&name.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Resolve a query name against this index's interner once; the result feeds
    /// [`NameIndex::lookup_candidates_resolved`] and
    /// [`NameIndex::estimate_candidate_volume_resolved`] without re-walking the
    /// name's grams.
    pub fn resolve_query(&self, name: &str) -> ResolvedQuery {
        let (known, known_pos, distinct, char_len) = self.store.query_profile(name);
        ResolvedQuery {
            known,
            known_pos,
            distinct,
            char_len,
        }
    }

    /// Candidate nodes whose name shares at least `min_overlap_fraction` of the query
    /// name's q-grams (a conservative pre-filter: every node with fuzzy similarity
    /// above a moderate threshold shares a large q-gram fraction, so the exact kernel
    /// only has to be run on the returned candidates).
    ///
    /// Compatibility entry point running the classic merge
    /// ([`NameIndex::lookup_approximate_baseline`] — byte-identical results by the
    /// equivalence suite, and its working memory scales with the candidates
    /// touched rather than the corpus, which suits one-shot callers). Hot paths
    /// hold a [`CandidateScratch`] per worker and call
    /// [`NameIndex::lookup_candidates`] instead.
    pub fn lookup_approximate(&self, name: &str, min_overlap_fraction: f64) -> Vec<GlobalNodeId> {
        self.lookup_approximate_baseline(name, min_overlap_fraction)
    }

    /// The filter–verify candidate lookup (see the module docs): length segments
    /// outside the window are skipped wholesale, the survivors are merged with a
    /// T-occurrence count filter (ScanCount or MergeSkip, chosen from the
    /// in-window volume). Returns candidate ids ascending.
    pub fn lookup_candidates(
        &self,
        query: &CandidateQuery<'_>,
        scratch: &mut CandidateScratch,
    ) -> Vec<GlobalNodeId> {
        self.lookup_candidates_counted(query, MergePolicy::Auto, scratch)
            .0
    }

    /// [`NameIndex::lookup_candidates`] with an explicit merge policy, also
    /// returning the work accounting (bench and test instrumentation).
    pub fn lookup_candidates_counted(
        &self,
        query: &CandidateQuery<'_>,
        policy: MergePolicy,
        scratch: &mut CandidateScratch,
    ) -> (Vec<GlobalNodeId>, CandidateStats) {
        let resolved = self.resolve_query(query.name);
        self.lookup_candidates_resolved(
            &resolved,
            query.min_overlap_fraction,
            query.length_window,
            policy,
            scratch,
        )
    }

    /// The resolved-query core of the filter–verify lookup.
    pub fn lookup_candidates_resolved(
        &self,
        resolved: &ResolvedQuery,
        min_overlap_fraction: f64,
        window: LengthWindow,
        policy: MergePolicy,
        scratch: &mut CandidateScratch,
    ) -> (Vec<GlobalNodeId>, CandidateStats) {
        let mut stats = CandidateStats::default();
        if resolved.distinct == 0 {
            return (Vec::new(), stats);
        }
        let needed = ((min_overlap_fraction * resolved.distinct as f64).ceil() as usize).max(1);

        // Length filter: collect the in-window segments. Sizes and volumes are
        // *live* (dead postings subtracted), so the planner-facing numbers and
        // the merge-policy choice match a from-scratch rebuild of the same
        // logical content; fully-dead segments vanish entirely, like the
        // rebuild never having had them.
        scratch.segs.clear();
        for &gram_id in &resolved.known {
            let (seg_start, seg_end) = self.segment_range(gram_id);
            for i in seg_start..seg_end {
                let seg = self.segments[i];
                let size = (seg.end - seg.start - self.seg_dead[i]) as usize;
                if size == 0 {
                    continue;
                }
                stats.volume_total += size;
                if window.admits(resolved.char_len, seg.len as usize) {
                    scratch.segs.push((seg.len, seg.start, seg.end));
                    stats.volume_in_window += size;
                } else {
                    stats.segments_skipped += 1;
                }
            }
        }
        // A node can occur at most once per known gram, so a bound above the known
        // gram count (or the surviving segment count) is unreachable.
        if needed > resolved.known.len()
            || needed > scratch.segs.len()
            || stats.volume_in_window == 0
        {
            return (Vec::new(), stats);
        }

        // The `u8` counters cap both the reachable count (≤ known grams) and the
        // bound itself; queries past 255 known grams always take MergeSkip.
        let scan_safe = resolved.known.len() <= u8::MAX as usize;
        let algorithm = match policy {
            MergePolicy::ScanCount if scan_safe => MergeAlgorithm::ScanCount,
            MergePolicy::ScanProbe if scan_safe => MergeAlgorithm::ScanProbe,
            MergePolicy::MergeSkip | MergePolicy::ScanCount | MergePolicy::ScanProbe => {
                MergeAlgorithm::MergeSkip
            }
            MergePolicy::Auto if !scan_safe => MergeAlgorithm::MergeSkip,
            MergePolicy::Auto if stats.volume_in_window <= crate::simd::scan_count_max_volume() => {
                MergeAlgorithm::ScanCount
            }
            MergePolicy::Auto => MergeAlgorithm::ScanProbe,
        };
        stats.algorithm = algorithm;
        match algorithm {
            MergeAlgorithm::ScanCount => {
                scratch.runs.clear();
                scratch
                    .runs
                    .extend(scratch.segs.iter().map(|&(_, s, e)| (s, e)));
                self.merge_scan_count(needed, scratch, &mut stats);
            }
            MergeAlgorithm::ScanProbe => self.merge_scan_probe(needed, scratch, &mut stats),
            MergeAlgorithm::MergeSkip => {
                scratch.runs.clear();
                scratch
                    .runs
                    .extend(scratch.segs.iter().map(|&(_, s, e)| (s, e)));
                self.merge_skip(needed, scratch, &mut stats);
            }
        }
        if let LengthWindow::FuzzyFloor(floor) = window {
            self.positional_filter(resolved, floor, scratch, &mut stats);
        }
        let ids = self.store.node_ids();
        let out = scratch
            .out
            .iter()
            .map(|&dense| ids[dense as usize])
            .collect();
        (out, stats)
    }

    /// Positional q-gram filter over the count-filter survivors in
    /// `scratch.out` (the FuzzyFloor refinement of the classic count filter,
    /// Gravano et al.'s position-augmented T-occurrence idea adapted to the
    /// packed first/last intervals the arena stores).
    ///
    /// Soundness: a candidate scoring `>= floor` is within `k` OSA edits of
    /// the query (same float expression as the kernel, see
    /// [`max_edits_for_floor`]). Each edit destroys at most `q + 1` gram
    /// occurrences and shifts no surviving occurrence by more than `k`
    /// positions, so at least `distinct - k * (q + 1)` distinct query grams
    /// keep a surviving occurrence — each of which the candidate contains at
    /// a position within `k` of a query occurrence, making its packed
    /// first/last intervals overlap under slack `k`. Counting the grams that
    /// pass the interval test therefore reaches the bound for every true
    /// match; candidates below it are provably below the floor.
    fn positional_filter(
        &self,
        resolved: &ResolvedQuery,
        floor: f64,
        scratch: &mut CandidateScratch,
        stats: &mut CandidateStats,
    ) {
        if resolved.known.is_empty() || scratch.out.is_empty() {
            return;
        }
        let per_edit = (self.q + 1) as i64;
        let mut kept = 0usize;
        for idx in 0..scratch.out.len() {
            let dense = scratch.out[idx];
            let c_len = self.lens[dense as usize] as usize;
            let k = max_edits_for_floor(floor, resolved.char_len, c_len);
            let bound = resolved.distinct as i64 - k as i64 * per_edit;
            if bound <= 0 {
                // The edit budget could destroy every gram — nothing to test.
                scratch.out[kept] = dense;
                kept += 1;
                continue;
            }
            let bound = bound as usize;
            let mut compatible = 0usize;
            for (g_i, (&gram_id, &q_pos)) in
                resolved.known.iter().zip(&resolved.known_pos).enumerate()
            {
                if compatible + (resolved.known.len() - g_i) < bound {
                    break; // the remaining grams cannot reach the bound
                }
                if let Some(c_pos) = self.posting_position(gram_id, dense) {
                    if positions_compatible(q_pos, c_pos, k) {
                        compatible += 1;
                        if compatible >= bound {
                            break;
                        }
                    }
                }
            }
            if compatible >= bound {
                scratch.out[kept] = dense;
                kept += 1;
            } else {
                stats.positional_rejections += 1;
            }
        }
        scratch.out.truncate(kept);
    }

    /// The packed gram-position entry of `dense` in `gram_id`'s posting list,
    /// or `None` when the candidate does not contain the gram. Same-length
    /// twin segments hold disjoint dense ranges, so at most one probe hits.
    fn posting_position(&self, gram_id: u32, dense: u32) -> Option<u32> {
        let len = self.lens[dense as usize];
        let (seg_start, seg_end) = self.segment_range(gram_id);
        for i in seg_start..seg_end {
            let seg = self.segments[i];
            if seg.len != len {
                continue;
            }
            if let Ok(off) = self.arena[seg.start as usize..seg.end as usize].binary_search(&dense)
            {
                return Some(self.arena_pos[seg.start as usize + off]);
            }
        }
        None
    }

    /// The counting pass shared by ScanCount and ScanProbe: dense `u8` counters
    /// over `scratch.runs`, first touches recorded so the counters can be reset
    /// in time proportional to the candidates touched, not the corpus.
    fn scan_runs(&self, scratch: &mut CandidateScratch, stats: &mut CandidateStats) {
        scratch.counts.resize(self.store.len(), 0);
        scratch.touched.clear();
        for &(start, end) in &scratch.runs {
            crate::simd::accumulate_run(
                &self.arena[start as usize..end as usize],
                &mut scratch.counts,
                &mut scratch.touched,
            );
        }
        stats.candidates_examined = scratch.touched.len();
    }

    /// ScanCount: one dense `u8` counter per node, reset through the touched list
    /// so the per-query cost scales with the candidates touched, not the corpus.
    fn merge_scan_count(
        &self,
        needed: usize,
        scratch: &mut CandidateScratch,
        stats: &mut CandidateStats,
    ) {
        self.scan_runs(scratch, stats);
        scratch.out.clear();
        for &dense in &scratch.touched {
            if scratch.counts[dense as usize] as usize >= needed
                && !self.store.is_dead(dense as usize)
            {
                scratch.out.push(dense);
            }
            scratch.counts[dense as usize] = 0;
        }
        scratch.out.sort_unstable();
    }

    /// ScanProbe: the length-bucketed refinement of DivideSkip (Li et al.). A
    /// candidate has exactly one name length, so per length bucket the up-to
    /// `needed − 1` largest segments can be excluded from scanning: a candidate
    /// appearing **only** in those probe segments tops out at `needed − 1`
    /// occurrences and can never qualify. The short segments are ScanCounted;
    /// each touched candidate that could still reach the bound binary-probes the
    /// probe segments **of its own length**. The heaviest postings — common grams
    /// at common lengths — are never merged at all.
    fn merge_scan_probe(
        &self,
        needed: usize,
        scratch: &mut CandidateScratch,
        stats: &mut CandidateStats,
    ) {
        // Partition: group segments by length, largest first within a group, and
        // designate up to `needed − 1` worthwhile leaders per group probe-only.
        scratch
            .segs
            .sort_unstable_by_key(|&(len, start, end)| (len, Reverse(end - start)));
        scratch.long.clear();
        scratch.runs.clear();
        let mut group_len = u32::MAX;
        let mut group_taken = 0usize;
        for &(len, start, end) in scratch.segs.iter() {
            if len != group_len {
                group_len = len;
                group_taken = 0;
            }
            if group_taken < needed - 1 && (end - start) as usize >= PROBE_MIN_SEGMENT {
                scratch.long.push((len, start, end));
                group_taken += 1;
                stats.postings_skipped += (end - start) as usize;
            } else {
                scratch.runs.push((start, end));
            }
        }

        // ScanCount over the short segments.
        self.scan_runs(scratch, stats);

        // Qualification: top a candidate's short count up with probes into the
        // probe segments of its length (`scratch.long` is sorted by length, so the
        // per-length slice is one binary-searched range).
        scratch.out.clear();
        for &dense in &scratch.touched {
            let short_count = scratch.counts[dense as usize] as usize;
            scratch.counts[dense as usize] = 0;
            if self.store.is_dead(dense as usize) {
                continue;
            }
            let len = self.lens[dense as usize];
            let group_start = scratch.long.partition_point(|&(l, _, _)| l < len);
            let group_end =
                scratch.long[group_start..].partition_point(|&(l, _, _)| l == len) + group_start;
            let potential = group_end - group_start;
            if short_count + potential < needed {
                continue;
            }
            let mut total = short_count;
            for &(_, start, end) in &scratch.long[group_start..group_end] {
                stats.probes += 1;
                if self.arena[start as usize..end as usize]
                    .binary_search(&dense)
                    .is_ok()
                {
                    total += 1;
                }
                if total >= needed {
                    break;
                }
            }
            if total >= needed {
                scratch.out.push(dense);
            }
        }
        scratch.out.sort_unstable();
    }

    /// MergeSkip (Li et al.): a heap over the sorted runs pops candidates in
    /// ascending order; whenever the minimum's multiplicity cannot reach the
    /// T-occurrence bound, the `T - 1` smallest cursors jump forward by binary
    /// search to the next frontier value, so postings of candidates that can never
    /// qualify are skipped unexamined. Terminates as soon as fewer than `T`
    /// cursors remain.
    fn merge_skip(
        &self,
        needed: usize,
        scratch: &mut CandidateScratch,
        stats: &mut CandidateStats,
    ) {
        scratch.heap.clear();
        scratch.out.clear();
        for (run_idx, &(pos, _)) in scratch.runs.iter().enumerate() {
            scratch
                .heap
                .push(Reverse((self.arena[pos as usize], run_idx as u32)));
        }
        while scratch.heap.len() >= needed {
            let value = scratch.heap.peek().expect("heap non-empty").0 .0;
            scratch.popped.clear();
            while let Some(&Reverse((v, run_idx))) = scratch.heap.peek() {
                if v != value {
                    break;
                }
                scratch.heap.pop();
                scratch.popped.push(run_idx);
            }
            stats.candidates_examined += 1;
            if scratch.popped.len() >= needed {
                if !self.store.is_dead(value as usize) {
                    scratch.out.push(value);
                }
                for &run_idx in &scratch.popped {
                    let (pos, end) = &mut scratch.runs[run_idx as usize];
                    *pos += 1;
                    if pos < end {
                        scratch
                            .heap
                            .push(Reverse((self.arena[*pos as usize], run_idx)));
                    }
                }
            } else {
                // Pop until T - 1 cursors are in hand; if the heap empties first,
                // fewer than T runs remain and nothing can reach the bound.
                while scratch.popped.len() < needed - 1 {
                    match scratch.heap.pop() {
                        Some(Reverse((_, run_idx))) => scratch.popped.push(run_idx),
                        None => break,
                    }
                }
                let Some(&Reverse((frontier, _))) = scratch.heap.peek() else {
                    break;
                };
                for &run_idx in &scratch.popped {
                    let (pos, end) = &mut scratch.runs[run_idx as usize];
                    let slice = &self.arena[*pos as usize..*end as usize];
                    let jump = slice.partition_point(|&v| v < frontier);
                    stats.postings_skipped += jump.saturating_sub(1);
                    *pos += jump as u32;
                    if pos < end {
                        scratch
                            .heap
                            .push(Reverse((self.arena[*pos as usize], run_idx)));
                    }
                }
            }
        }
    }

    /// The classic pre-filter–verify lookup, kept verbatim as the equivalence
    /// reference and bench baseline: merge **every** posting of the query's grams
    /// through a per-query hash map, then apply the count filter. Returns the
    /// candidates ascending plus the number of distinct nodes examined.
    pub fn lookup_approximate_baseline_counted(
        &self,
        name: &str,
        min_overlap_fraction: f64,
    ) -> (Vec<GlobalNodeId>, usize) {
        let (known, distinct) = self.store.query_signature(name);
        if distinct == 0 {
            return (Vec::new(), 0);
        }
        let ids = self.store.node_ids();
        let mut counts: HashMap<GlobalNodeId, usize> = HashMap::new();
        for &gram_id in &known {
            let (seg_start, seg_end) = self.segment_range(gram_id);
            for seg in &self.segments[seg_start..seg_end] {
                for &dense in &self.arena[seg.start as usize..seg.end as usize] {
                    if self.store.is_dead(dense as usize) {
                        continue;
                    }
                    *counts.entry(ids[dense as usize]).or_default() += 1;
                }
            }
        }
        let needed = (min_overlap_fraction * distinct as f64).ceil() as usize;
        let needed = needed.max(1);
        let examined = counts.len();
        let mut out: Vec<GlobalNodeId> = counts
            .into_iter()
            .filter(|&(_, c)| c >= needed)
            .map(|(id, _)| id)
            .collect();
        out.sort();
        (out, examined)
    }

    /// [`NameIndex::lookup_approximate_baseline_counted`] without the accounting.
    pub fn lookup_approximate_baseline(
        &self,
        name: &str,
        min_overlap_fraction: f64,
    ) -> Vec<GlobalNodeId> {
        self.lookup_approximate_baseline_counted(name, min_overlap_fraction)
            .0
    }

    /// The q used when the index was built.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of nodes indexed and alive (tombstoned nodes are not served, so
    /// they do not count).
    pub fn indexed_nodes(&self) -> usize {
        self.store.alive_len()
    }

    /// Segment-directory range of one gram.
    fn segment_range(&self, gram_id: u32) -> (usize, usize) {
        (
            self.gram_segments[gram_id as usize] as usize,
            self.gram_segments[gram_id as usize + 1] as usize,
        )
    }

    /// Live length of the posting list of one q-gram (0 for grams absent from
    /// the index; tombstoned postings do not count).
    pub fn gram_posting_len(&self, gram: &str) -> usize {
        self.store
            .interner()
            .lookup(gram)
            .map(|id| {
                let (seg_start, seg_end) = self.segment_range(id);
                (seg_start..seg_end)
                    .map(|i| {
                        (self.segments[i].end - self.segments[i].start - self.seg_dead[i]) as usize
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Upper bound on the work of [`NameIndex::lookup_approximate`] for `name`: the
    /// summed posting-list lengths of the query's distinct q-grams. Query planners use
    /// this to decide between index-pruned and exhaustive candidate generation without
    /// materialising the candidates. Pure integer work: grams are resolved to interned
    /// ids once and the sums read the dense segment directory.
    pub fn estimate_candidate_volume(&self, name: &str) -> usize {
        self.estimate_candidate_volume_resolved(&self.resolve_query(name), LengthWindow::Infinite)
    }

    /// The length-aware volume estimate: summed posting volume of the resolved
    /// query's **in-window** segments — the post-length-filter work bound the
    /// planner's pruned-vs-exhaustive decision uses.
    pub fn estimate_candidate_volume_resolved(
        &self,
        resolved: &ResolvedQuery,
        window: LengthWindow,
    ) -> usize {
        let mut volume = 0usize;
        for &gram_id in &resolved.known {
            let (seg_start, seg_end) = self.segment_range(gram_id);
            for i in seg_start..seg_end {
                let seg = self.segments[i];
                if window.admits(resolved.char_len, seg.len as usize) {
                    volume += (seg.end - seg.start - self.seg_dead[i]) as usize;
                }
            }
        }
        volume
    }

    /// Per-name-length breakdown of the resolved query's posting volume, ascending
    /// by length: what a planner (or an operator) sees before choosing a window.
    pub fn candidate_volume_by_length(&self, resolved: &ResolvedQuery) -> Vec<(usize, usize)> {
        let mut by_len: Vec<(usize, usize)> = Vec::new();
        for &gram_id in &resolved.known {
            let (seg_start, seg_end) = self.segment_range(gram_id);
            for i in seg_start..seg_end {
                let seg = self.segments[i];
                let size = (seg.end - seg.start - self.seg_dead[i]) as usize;
                if size == 0 {
                    continue;
                }
                match by_len.binary_search_by_key(&(seg.len as usize), |&(l, _)| l) {
                    Ok(pos) => by_len[pos].1 += size,
                    Err(pos) => by_len.insert(pos, (seg.len as usize, size)),
                }
            }
        }
        by_len
    }

    /// Number of q-grams the indexed node's name produced (0 for unknown nodes).
    pub fn gram_count(&self, id: GlobalNodeId) -> usize {
        self.store
            .features_of(id)
            .map(|f| f.gram_total())
            .unwrap_or(0)
    }
}

/// Do the packed first/last position intervals of a query gram (`qp`) and a
/// candidate gram (`cp`) overlap once widened by an edit budget of `k`?
///
/// Positions are window indices in the `#`-padded gram stream, packed as
/// `first << 16 | last` with both halves clamped to `u16`. A clamped half
/// (`0xFFFF`) means the true position may be larger than what was stored, so
/// the test is inexact there and must keep the candidate.
fn positions_compatible(qp: u32, cp: u32, k: u32) -> bool {
    let (qmin, qmax) = (qp >> 16, qp & 0xFFFF);
    let (cmin, cmax) = (cp >> 16, cp & 0xFFFF);
    if qmin == 0xFFFF || qmax == 0xFFFF || cmin == 0xFFFF || cmax == 0xFFFF {
        return true;
    }
    cmin <= qmax + k && cmax + k >= qmin
}

/// Largest edit distance `k` for which [`normalized_similarity`] of a
/// `q_len`-char query and `c_len`-char candidate can still reach `floor`.
///
/// Evaluated against the exact float expression the scoring kernel uses (not
/// its algebraic rearrangement) so the filter's edit budget can never be
/// tighter than the verifier's accept region: start at the algebraic bound and
/// settle with the real predicate in both directions.
fn max_edits_for_floor(floor: f64, q_len: usize, c_len: usize) -> u32 {
    let m = q_len.max(c_len);
    if m == 0 {
        // normalized_similarity(d, 0, 0) is 1.0 for every d; without this
        // guard the widening loop below would never terminate.
        return 0;
    }
    let mut k = (((1.0 - floor) * m as f64).floor() as i64).clamp(0, m as i64) as usize;
    while k > 0 && normalized_similarity(k, q_len, c_len) < floor {
        k -= 1;
    }
    while k < m && normalized_similarity(k + 1, q_len, c_len) >= floor {
        k += 1;
    }
    k as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{SchemaNode, TreeBuilder};
    use xsm_similarity::ngram::qgrams;

    fn small_repo() -> SchemaRepository {
        let other = TreeBuilder::new("contacts")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("emailAddress"))
            .sibling(SchemaNode::element("address"))
            .build();
        SchemaRepository::from_trees(vec![paper_repository_fragment(), other])
    }

    #[test]
    fn exact_lookup_is_case_insensitive() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.lookup_exact("ADDRESS").len(), 2);
        assert_eq!(idx.lookup_exact("title").len(), 1);
        assert_eq!(idx.lookup_exact("nosuchname").len(), 0);
        assert!(idx.distinct_names() >= 9);
    }

    #[test]
    fn approximate_lookup_finds_related_names() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("email", 0.3);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(
            names.contains(&"emailAddress"),
            "expected emailAddress among {names:?}"
        );
        // A strict overlap requirement excludes loosely related names.
        let strict = idx.lookup_approximate("email", 0.99);
        assert!(strict.len() <= candidates.len());
    }

    #[test]
    fn approximate_lookup_of_exact_name_contains_it() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("address", 0.9);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(names.iter().filter(|&&n| n == "address").count() >= 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        // q-gram padding means even "" produces grams, but sanity: tiny queries work.
        let v = idx.lookup_approximate("x", 0.5);
        // No name contains 'x' grams in this repo.
        assert!(v.is_empty() || v.iter().all(|&id| repo.name_of(id).contains('x')));
    }

    #[test]
    fn gram_counts_recorded_per_node() {
        let repo = small_repo();
        let idx = NameIndex::build_with_q(&repo, 2);
        assert_eq!(idx.q(), 2);
        for (id, node) in repo.nodes() {
            assert_eq!(
                idx.gram_count(id),
                qgrams(&node.name.to_lowercase(), 2).len()
            );
        }
    }

    #[test]
    fn candidate_volume_estimates_lookup_work() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.indexed_nodes(), repo.total_nodes());
        // The estimate sums posting lists, so it bounds the ids touched by the
        // approximate lookup with the loosest overlap requirement.
        for name in ["address", "email", "person", "qqqq"] {
            let touched: usize = idx.lookup_approximate(name, 0.0).len();
            assert!(
                idx.estimate_candidate_volume(name) >= touched,
                "estimate below actual candidates for {name}"
            );
        }
        // No indexed name shares a gram (even a padded one) with "qqqq".
        assert_eq!(idx.estimate_candidate_volume("qqqq"), 0);
        // "address" appears twice, so each of its grams posts at least two ids.
        assert!(idx.estimate_candidate_volume("address") >= 2);
        assert!(idx.gram_posting_len("add") >= 2);
        assert_eq!(idx.gram_posting_len("no such gram"), 0);
    }

    #[test]
    fn windowed_estimate_never_exceeds_the_infinite_one() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        for name in ["address", "email", "person", "na"] {
            let resolved = idx.resolve_query(name);
            let infinite =
                idx.estimate_candidate_volume_resolved(&resolved, LengthWindow::Infinite);
            assert_eq!(infinite, idx.estimate_candidate_volume(name));
            let mut last = infinite;
            for floor in [0.2, 0.5, 0.8, 1.0] {
                let windowed = idx.estimate_candidate_volume_resolved(
                    &resolved,
                    LengthWindow::fuzzy_floor(floor),
                );
                assert!(windowed <= last, "{name}: tighter floor grew the volume");
                last = windowed;
            }
            // The by-length breakdown sums back to the infinite estimate.
            let by_len = idx.candidate_volume_by_length(&resolved);
            assert_eq!(by_len.iter().map(|&(_, v)| v).sum::<usize>(), infinite);
            assert!(by_len.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        }
    }

    #[test]
    fn filter_verify_matches_the_baseline_on_the_small_repo() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let mut scratch = CandidateScratch::default();
        for name in ["address", "email", "person", "authorName", "x", ""] {
            for frac in [0.0, 0.3, 0.5, 0.99] {
                let baseline = idx.lookup_approximate_baseline(name, frac);
                for policy in [
                    MergePolicy::Auto,
                    MergePolicy::ScanCount,
                    MergePolicy::MergeSkip,
                    MergePolicy::ScanProbe,
                ] {
                    let (got, _) = idx.lookup_candidates_counted(
                        &CandidateQuery::new(name, frac),
                        policy,
                        &mut scratch,
                    );
                    assert_eq!(got, baseline, "{name} frac={frac} policy={policy:?}");
                }
            }
        }
    }

    #[test]
    fn length_window_drops_only_sub_floor_candidates() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let mut scratch = CandidateScratch::default();
        for (name, floor) in [("email", 0.5), ("address", 0.7), ("person", 0.9)] {
            let baseline = idx.lookup_approximate_baseline(name, 0.2);
            let query =
                CandidateQuery::new(name, 0.2).with_length_window(LengthWindow::fuzzy_floor(floor));
            let windowed = idx.lookup_candidates(&query, &mut scratch);
            // Subset of the baseline…
            assert!(windowed.iter().all(|id| baseline.contains(id)));
            // …and nothing that clears the fuzzy floor was dropped.
            for &id in &baseline {
                let sim = xsm_similarity::compare_string_fuzzy(name, repo.name_of(id));
                if sim >= floor {
                    assert!(
                        windowed.contains(&id),
                        "{name}: dropped {:?} with sim {sim} >= {floor}",
                        repo.name_of(id)
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_overlap_bounds_return_empty() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let mut scratch = CandidateScratch::default();
        // "emailx" has grams unknown to the corpus; a 0.99 fraction of its distinct
        // grams exceeds the known-gram count, so no candidate can qualify.
        let (got, stats) = idx.lookup_candidates_counted(
            &CandidateQuery::new("emailxyzq", 0.99),
            MergePolicy::Auto,
            &mut scratch,
        );
        assert!(got.is_empty());
        assert_eq!(stats.candidates_examined, 0);
        assert_eq!(got, idx.lookup_approximate_baseline("emailxyzq", 0.99));
    }

    #[test]
    fn scratch_is_reusable_across_queries() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let mut scratch = CandidateScratch::default();
        for _ in 0..3 {
            for name in ["address", "email", "person"] {
                let fresh = idx.lookup_candidates(
                    &CandidateQuery::new(name, 0.3),
                    &mut CandidateScratch::default(),
                );
                let reused = idx.lookup_candidates(&CandidateQuery::new(name, 0.3), &mut scratch);
                assert_eq!(fresh, reused, "dirty scratch changed {name}");
            }
        }
    }

    #[test]
    fn features_are_exposed_for_scoring() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.features().len(), repo.total_nodes());
        assert_eq!(idx.features().interner().q(), idx.q());
        for (id, node) in repo.nodes() {
            let f = idx.features().features_of(id).unwrap();
            assert_eq!(&*f.lower, node.name.to_lowercase().as_str());
        }
    }

    #[test]
    fn length_window_admits_conservatively() {
        let w = LengthWindow::fuzzy_floor(0.5);
        // Query of 6 chars: lengths 3..=12 can still reach 0.5.
        assert!(w.admits(6, 3));
        assert!(w.admits(6, 12));
        assert!(!w.admits(6, 2));
        assert!(!w.admits(6, 13));
        // Floors at or below zero collapse to Infinite.
        assert!(LengthWindow::fuzzy_floor(0.0).is_infinite());
        assert!(LengthWindow::fuzzy_floor(-1.0).is_infinite());
        assert!(LengthWindow::Infinite.admits(0, 1_000_000));
        // Empty query vs empty candidate is a perfect pair.
        assert!(LengthWindow::fuzzy_floor(1.0).admits(0, 0));
        assert!(!LengthWindow::fuzzy_floor(1.0).admits(0, 1));
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        let repo = small_repo();
        NameIndex::build_with_q(&repo, 0);
    }
}
