//! Name indexes over a repository: exact lookup and q-gram approximate lookup.
//!
//! Bellflower's element matcher conceptually compares *every* personal-schema element
//! with *every* repository element. The paper points to "approximate string joins"
//! (Gravano et al.) as the standard way to implement such matchers efficiently; the
//! [`NameIndex`] is that substrate: an inverted index from lowercased names (exact) and
//! from character q-grams (approximate candidate retrieval with a count filter).

use std::collections::HashMap;
use xsm_schema::GlobalNodeId;
use xsm_similarity::ngram::qgrams;

use crate::repository::SchemaRepository;

/// Inverted indexes from names and q-grams to repository nodes.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    /// lowercase name → nodes carrying exactly that name.
    exact: HashMap<String, Vec<GlobalNodeId>>,
    /// q-gram → nodes whose name contains the gram.
    grams: HashMap<String, Vec<GlobalNodeId>>,
    /// node → number of q-grams of its name (needed by the count filter).
    gram_counts: HashMap<GlobalNodeId, usize>,
    q: usize,
}

impl NameIndex {
    /// Build the index over all nodes of a repository with the default `q = 3`.
    pub fn build(repo: &SchemaRepository) -> Self {
        Self::build_with_q(repo, 3)
    }

    /// Build with an explicit q-gram length (`q >= 1`).
    pub fn build_with_q(repo: &SchemaRepository, q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        let mut exact: HashMap<String, Vec<GlobalNodeId>> = HashMap::new();
        let mut grams: HashMap<String, Vec<GlobalNodeId>> = HashMap::new();
        let mut gram_counts = HashMap::new();
        for (id, node) in repo.nodes() {
            let lower = node.name.to_lowercase();
            exact.entry(lower.clone()).or_default().push(id);
            // Dedupe grams by sorting the owned Vec in place: no per-gram clone and no
            // per-node HashSet allocation (names produce a handful of grams, so the
            // sort is cheaper than hashing each gram twice).
            let mut gs = qgrams(&lower, q);
            gram_counts.insert(id, gs.len());
            gs.sort_unstable();
            gs.dedup();
            for g in gs {
                grams.entry(g).or_default().push(id);
            }
        }
        NameIndex {
            exact,
            grams,
            gram_counts,
            q,
        }
    }

    /// Number of distinct names indexed.
    pub fn distinct_names(&self) -> usize {
        self.exact.len()
    }

    /// Nodes whose name equals `name` (case-insensitive).
    pub fn lookup_exact(&self, name: &str) -> &[GlobalNodeId] {
        self.exact
            .get(&name.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Candidate nodes whose name shares at least `min_overlap_fraction` of the query
    /// name's q-grams (a conservative pre-filter: every node with fuzzy similarity
    /// above a moderate threshold shares a large q-gram fraction, so the exact kernel
    /// only has to be run on the returned candidates).
    pub fn lookup_approximate(&self, name: &str, min_overlap_fraction: f64) -> Vec<GlobalNodeId> {
        let lower = name.to_lowercase();
        let query_grams: Vec<String> = {
            let mut v = qgrams(&lower, self.q);
            v.sort();
            v.dedup();
            v
        };
        if query_grams.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<GlobalNodeId, usize> = HashMap::new();
        for g in &query_grams {
            if let Some(list) = self.grams.get(g) {
                for &id in list {
                    *counts.entry(id).or_default() += 1;
                }
            }
        }
        let needed = (min_overlap_fraction * query_grams.len() as f64).ceil() as usize;
        let needed = needed.max(1);
        let mut out: Vec<GlobalNodeId> = counts
            .into_iter()
            .filter(|&(_, c)| c >= needed)
            .map(|(id, _)| id)
            .collect();
        out.sort();
        out
    }

    /// The q used when the index was built.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of nodes indexed (one per repository node).
    pub fn indexed_nodes(&self) -> usize {
        self.gram_counts.len()
    }

    /// Length of the posting list of one q-gram (0 for grams absent from the index).
    pub fn gram_posting_len(&self, gram: &str) -> usize {
        self.grams.get(gram).map(|v| v.len()).unwrap_or(0)
    }

    /// Upper bound on the work of [`NameIndex::lookup_approximate`] for `name`: the
    /// summed posting-list lengths of the query's distinct q-grams. Query planners use
    /// this to decide between index-pruned and exhaustive candidate generation without
    /// materialising the candidates.
    pub fn estimate_candidate_volume(&self, name: &str) -> usize {
        let mut gs = qgrams(&name.to_lowercase(), self.q);
        gs.sort_unstable();
        gs.dedup();
        gs.iter().map(|g| self.gram_posting_len(g)).sum()
    }

    /// Number of q-grams the indexed node's name produced (0 for unknown nodes).
    pub fn gram_count(&self, id: GlobalNodeId) -> usize {
        self.gram_counts.get(&id).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn small_repo() -> SchemaRepository {
        let other = TreeBuilder::new("contacts")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("emailAddress"))
            .sibling(SchemaNode::element("address"))
            .build();
        SchemaRepository::from_trees(vec![paper_repository_fragment(), other])
    }

    #[test]
    fn exact_lookup_is_case_insensitive() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.lookup_exact("ADDRESS").len(), 2);
        assert_eq!(idx.lookup_exact("title").len(), 1);
        assert_eq!(idx.lookup_exact("nosuchname").len(), 0);
        assert!(idx.distinct_names() >= 9);
    }

    #[test]
    fn approximate_lookup_finds_related_names() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("email", 0.3);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(
            names.contains(&"emailAddress"),
            "expected emailAddress among {names:?}"
        );
        // A strict overlap requirement excludes loosely related names.
        let strict = idx.lookup_approximate("email", 0.99);
        assert!(strict.len() <= candidates.len());
    }

    #[test]
    fn approximate_lookup_of_exact_name_contains_it() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("address", 0.9);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(names.iter().filter(|&&n| n == "address").count() >= 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        // q-gram padding means even "" produces grams, but sanity: tiny queries work.
        let v = idx.lookup_approximate("x", 0.5);
        // No name contains 'x' grams in this repo.
        assert!(v.is_empty() || v.iter().all(|&id| repo.name_of(id).contains('x')));
    }

    #[test]
    fn gram_counts_recorded_per_node() {
        let repo = small_repo();
        let idx = NameIndex::build_with_q(&repo, 2);
        assert_eq!(idx.q(), 2);
        for (id, node) in repo.nodes() {
            assert_eq!(
                idx.gram_count(id),
                qgrams(&node.name.to_lowercase(), 2).len()
            );
        }
    }

    #[test]
    fn candidate_volume_estimates_lookup_work() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.indexed_nodes(), repo.total_nodes());
        // The estimate sums posting lists, so it bounds the ids touched by the
        // approximate lookup with the loosest overlap requirement.
        for name in ["address", "email", "person", "qqqq"] {
            let touched: usize = idx.lookup_approximate(name, 0.0).len();
            assert!(
                idx.estimate_candidate_volume(name) >= touched,
                "estimate below actual candidates for {name}"
            );
        }
        // No indexed name shares a gram (even a padded one) with "qqqq".
        assert_eq!(idx.estimate_candidate_volume("qqqq"), 0);
        // "address" appears twice, so each of its grams posts at least two ids.
        assert!(idx.estimate_candidate_volume("address") >= 2);
        assert!(idx.gram_posting_len("add") >= 2);
        assert_eq!(idx.gram_posting_len("no such gram"), 0);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        let repo = small_repo();
        NameIndex::build_with_q(&repo, 0);
    }
}
