//! Name indexes over a repository: exact lookup and q-gram approximate lookup.
//!
//! Bellflower's element matcher conceptually compares *every* personal-schema element
//! with *every* repository element. The paper points to "approximate string joins"
//! (Gravano et al.) as the standard way to implement such matchers efficiently; the
//! [`NameIndex`] is that substrate: an inverted index from lowercased names (exact)
//! and from character q-grams (approximate candidate retrieval with a count filter).
//!
//! Since the feature-store rewrite the gram side is fully integer-based: building the
//! index also builds a [`FeatureStore`] (one [`xsm_similarity::NameFeatures`] per
//! node, all grams interned to dense `u32` ids by a shared
//! [`xsm_similarity::GramInterner`]), and the posting lists live in a plain
//! `Vec` indexed by gram id — queries touch `String` grams only long enough to
//! resolve them to ids.

use std::collections::HashMap;
use xsm_schema::GlobalNodeId;

use crate::features::FeatureStore;
use crate::repository::SchemaRepository;

/// Inverted indexes from names and q-grams to repository nodes, plus the node
/// feature store the similarity kernels score against.
#[derive(Debug, Clone, Default)]
pub struct NameIndex {
    /// lowercase name → nodes carrying exactly that name.
    exact: HashMap<String, Vec<GlobalNodeId>>,
    /// `postings[gram_id]` = nodes whose name contains that interned gram.
    postings: Vec<Vec<GlobalNodeId>>,
    /// Per-node features and the shared gram interner.
    store: FeatureStore,
    q: usize,
}

impl NameIndex {
    /// Build the index over all nodes of a repository with the default `q = 3`.
    pub fn build(repo: &SchemaRepository) -> Self {
        Self::build_with_q(repo, 3)
    }

    /// Build with an explicit q-gram length (`q >= 1`). This also builds the
    /// repository's [`FeatureStore`], so every node's name features (and the shared
    /// gram interner) are computed exactly once, here.
    pub fn build_with_q(repo: &SchemaRepository, q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        let store = FeatureStore::build(repo, q);
        let mut exact: HashMap<String, Vec<GlobalNodeId>> = HashMap::new();
        let mut postings: Vec<Vec<GlobalNodeId>> = vec![Vec::new(); store.interner().len()];
        for (id, features) in store.iter() {
            exact
                .entry(features.lower.to_string())
                .or_default()
                .push(id);
            // The signature is already sorted + deduplicated, so each node lands at
            // most once per posting list, in canonical node order.
            for &gram_id in features.gram_sig.iter() {
                postings[gram_id as usize].push(id);
            }
        }
        NameIndex {
            exact,
            postings,
            store,
            q,
        }
    }

    /// Number of distinct names indexed.
    pub fn distinct_names(&self) -> usize {
        self.exact.len()
    }

    /// The per-node feature store (shared gram interner, one `NameFeatures` per
    /// node) built alongside the index.
    pub fn features(&self) -> &FeatureStore {
        &self.store
    }

    /// Nodes whose name equals `name` (case-insensitive).
    pub fn lookup_exact(&self, name: &str) -> &[GlobalNodeId] {
        self.exact
            .get(&name.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Candidate nodes whose name shares at least `min_overlap_fraction` of the query
    /// name's q-grams (a conservative pre-filter: every node with fuzzy similarity
    /// above a moderate threshold shares a large q-gram fraction, so the exact kernel
    /// only has to be run on the returned candidates).
    pub fn lookup_approximate(&self, name: &str, min_overlap_fraction: f64) -> Vec<GlobalNodeId> {
        let (known, distinct) = self.store.query_signature(name);
        if distinct == 0 {
            return Vec::new();
        }
        let mut counts: HashMap<GlobalNodeId, usize> = HashMap::new();
        for &gram_id in &known {
            for &id in &self.postings[gram_id as usize] {
                *counts.entry(id).or_default() += 1;
            }
        }
        let needed = (min_overlap_fraction * distinct as f64).ceil() as usize;
        let needed = needed.max(1);
        let mut out: Vec<GlobalNodeId> = counts
            .into_iter()
            .filter(|&(_, c)| c >= needed)
            .map(|(id, _)| id)
            .collect();
        out.sort();
        out
    }

    /// The q used when the index was built.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of nodes indexed (one per repository node).
    pub fn indexed_nodes(&self) -> usize {
        self.store.len()
    }

    /// Length of the posting list of one q-gram (0 for grams absent from the index).
    pub fn gram_posting_len(&self, gram: &str) -> usize {
        self.store
            .interner()
            .lookup(gram)
            .map(|id| self.postings[id as usize].len())
            .unwrap_or(0)
    }

    /// Upper bound on the work of [`NameIndex::lookup_approximate`] for `name`: the
    /// summed posting-list lengths of the query's distinct q-grams. Query planners use
    /// this to decide between index-pruned and exhaustive candidate generation without
    /// materialising the candidates. Pure integer work: grams are resolved to interned
    /// ids once and the sums read the dense posting table.
    pub fn estimate_candidate_volume(&self, name: &str) -> usize {
        let (known, _) = self.store.query_signature(name);
        known
            .iter()
            .map(|&id| self.postings[id as usize].len())
            .sum()
    }

    /// Number of q-grams the indexed node's name produced (0 for unknown nodes).
    pub fn gram_count(&self, id: GlobalNodeId) -> usize {
        self.store
            .features_of(id)
            .map(|f| f.gram_total())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{SchemaNode, TreeBuilder};
    use xsm_similarity::ngram::qgrams;

    fn small_repo() -> SchemaRepository {
        let other = TreeBuilder::new("contacts")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("emailAddress"))
            .sibling(SchemaNode::element("address"))
            .build();
        SchemaRepository::from_trees(vec![paper_repository_fragment(), other])
    }

    #[test]
    fn exact_lookup_is_case_insensitive() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.lookup_exact("ADDRESS").len(), 2);
        assert_eq!(idx.lookup_exact("title").len(), 1);
        assert_eq!(idx.lookup_exact("nosuchname").len(), 0);
        assert!(idx.distinct_names() >= 9);
    }

    #[test]
    fn approximate_lookup_finds_related_names() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("email", 0.3);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(
            names.contains(&"emailAddress"),
            "expected emailAddress among {names:?}"
        );
        // A strict overlap requirement excludes loosely related names.
        let strict = idx.lookup_approximate("email", 0.99);
        assert!(strict.len() <= candidates.len());
    }

    #[test]
    fn approximate_lookup_of_exact_name_contains_it() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        let candidates = idx.lookup_approximate("address", 0.9);
        let names: Vec<&str> = candidates.iter().map(|&id| repo.name_of(id)).collect();
        assert!(names.iter().filter(|&&n| n == "address").count() >= 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        // q-gram padding means even "" produces grams, but sanity: tiny queries work.
        let v = idx.lookup_approximate("x", 0.5);
        // No name contains 'x' grams in this repo.
        assert!(v.is_empty() || v.iter().all(|&id| repo.name_of(id).contains('x')));
    }

    #[test]
    fn gram_counts_recorded_per_node() {
        let repo = small_repo();
        let idx = NameIndex::build_with_q(&repo, 2);
        assert_eq!(idx.q(), 2);
        for (id, node) in repo.nodes() {
            assert_eq!(
                idx.gram_count(id),
                qgrams(&node.name.to_lowercase(), 2).len()
            );
        }
    }

    #[test]
    fn candidate_volume_estimates_lookup_work() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.indexed_nodes(), repo.total_nodes());
        // The estimate sums posting lists, so it bounds the ids touched by the
        // approximate lookup with the loosest overlap requirement.
        for name in ["address", "email", "person", "qqqq"] {
            let touched: usize = idx.lookup_approximate(name, 0.0).len();
            assert!(
                idx.estimate_candidate_volume(name) >= touched,
                "estimate below actual candidates for {name}"
            );
        }
        // No indexed name shares a gram (even a padded one) with "qqqq".
        assert_eq!(idx.estimate_candidate_volume("qqqq"), 0);
        // "address" appears twice, so each of its grams posts at least two ids.
        assert!(idx.estimate_candidate_volume("address") >= 2);
        assert!(idx.gram_posting_len("add") >= 2);
        assert_eq!(idx.gram_posting_len("no such gram"), 0);
    }

    #[test]
    fn features_are_exposed_for_scoring() {
        let repo = small_repo();
        let idx = NameIndex::build(&repo);
        assert_eq!(idx.features().len(), repo.total_nodes());
        assert_eq!(idx.features().interner().q(), idx.q());
        for (id, node) in repo.nodes() {
            let f = idx.features().features_of(id).unwrap();
            assert_eq!(&*f.lower, node.name.to_lowercase().as_str());
        }
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        let repo = small_repo();
        NameIndex::build_with_q(&repo, 0);
    }
}
