//! The repository [`FeatureStore`]: one precomputed [`NameFeatures`] per node.
//!
//! Repository element names are immutable after construction, so everything the
//! similarity kernels derive from a name — lowercased characters, Myers match
//! vectors, word tokens, interned q-gram signatures — is computed exactly once here
//! and shared by every query the engine ever serves. The store and the
//! [`crate::NameIndex`] share one [`GramInterner`], which is what lets the index keep
//! its posting lists in a dense `Vec` keyed by gram id and lets candidate scoring
//! intersect signatures by integer merge.

use xsm_schema::{GlobalNodeId, SchemaTree, TreeId};
use xsm_similarity::features::{for_each_gram, GramInterner, NameFeatures};

use crate::repository::SchemaRepository;

/// The flat per-node feature columns a snapshot load hands over instead of
/// materialised [`NameFeatures`]: concatenated name blobs and the decoded
/// signature / multiplicity / match-vector arenas, each with `node_count + 1`
/// prefix-sum offsets. Holding these and building each node's `NameFeatures`
/// on first use keeps snapshot startup at a handful of bulk allocations —
/// the ~4 boxed slices per node are deferred to the first query that actually
/// scores the node (and are identical to an eager build when they do happen).
#[derive(Debug, Clone, Default)]
pub(crate) struct FeatureColumns {
    /// Every node's lowercased name, concatenated.
    pub lower_blob: String,
    /// Byte offsets into [`FeatureColumns::lower_blob`] (`node_count + 1`).
    pub lower_offsets: Vec<u32>,
    /// Original spellings, concatenated — only for nodes where lowercasing
    /// changed the name (an empty range means `lower` *is* the original).
    pub orig_blob: String,
    /// Byte offsets into [`FeatureColumns::orig_blob`] (`node_count + 1`).
    pub orig_offsets: Vec<u32>,
    /// All gram signatures, concatenated in node order.
    pub sig_flat: Vec<u32>,
    /// Multiplicities parallel to [`FeatureColumns::sig_flat`].
    pub count_flat: Vec<u32>,
    /// Entry offsets into the two gram arenas (`node_count + 1`).
    pub sig_offsets: Vec<u32>,
    /// All Myers match vectors, concatenated in node order.
    pub peq_flat: Vec<(char, u64)>,
    /// Entry offsets into [`FeatureColumns::peq_flat`] (`node_count + 1`).
    pub peq_offsets: Vec<u32>,
}

impl FeatureColumns {
    /// Materialise node `dense`'s features — exactly what an eager
    /// [`NameFeatures::build`] against the same interner produced at write time.
    fn materialize(&self, dense: usize) -> NameFeatures {
        let lower: Box<str> = self.lower_blob
            [self.lower_offsets[dense] as usize..self.lower_offsets[dense + 1] as usize]
            .into();
        let orig = &self.orig_blob
            [self.orig_offsets[dense] as usize..self.orig_offsets[dense + 1] as usize];
        let original: Option<Box<str>> = (!orig.is_empty()).then(|| orig.into());
        let sig_range = self.sig_offsets[dense] as usize..self.sig_offsets[dense + 1] as usize;
        let grams: Box<[u32]> = self.sig_flat[sig_range.clone()]
            .iter()
            .chain(self.count_flat[sig_range].iter())
            .copied()
            .collect();
        let peq: Box<[(char, u64)]> = self.peq_flat
            [self.peq_offsets[dense] as usize..self.peq_offsets[dense + 1] as usize]
            .into();
        NameFeatures::from_parts(lower, original, grams, peq)
    }
}

/// Precomputed name features for every node of a repository, plus the shared gram
/// interner. Node lookup is `O(1)` arithmetic: per-tree offsets into one dense
/// feature vector, no hashing.
///
/// A store built with [`FeatureStore::build`] is fully materialised. A store
/// reassembled from a snapshot keeps the flat `FeatureColumns` and fills each
/// node's slot on first access (thread-safe; concurrent first touches race
/// benignly on the slot's `OnceLock`) — same values, none of the startup cost.
#[derive(Debug, Clone, Default)]
pub struct FeatureStore {
    interner: GramInterner,
    ids: Vec<GlobalNodeId>,
    features: Vec<std::sync::OnceLock<NameFeatures>>,
    /// Set only for snapshot-loaded stores; `None` means every slot is filled.
    columns: Option<FeatureColumns>,
    /// `offsets[t]..offsets[t+1]` is the feature range of tree `t` (one trailing
    /// entry, so the slice bounds of the last tree need no special case).
    offsets: Vec<u32>,
    /// Tombstone bit per dense slot: a dead node keeps its slot (dense indices
    /// are stable forever) but is skipped by alive iteration and candidate
    /// emission. Always `features.len()` long.
    dead: Vec<bool>,
    /// The tombstoned trees, sorted ascending — the set a snapshot persists.
    dead_trees: Vec<TreeId>,
    /// Number of `false` entries in `dead`, maintained incrementally.
    alive: usize,
}

impl FeatureStore {
    /// Build features for every node of `repo` with gram length `q` (`q >= 1`),
    /// interning all grams into a fresh shared interner.
    pub fn build(repo: &SchemaRepository, q: usize) -> Self {
        let mut interner = GramInterner::new(q);
        let total = repo.total_nodes();
        let mut ids = Vec::with_capacity(total);
        let mut features = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(repo.tree_count() + 1);
        offsets.push(0);
        for (tid, tree) in repo.trees() {
            for (nid, node) in tree.nodes() {
                ids.push(GlobalNodeId::new(tid, nid));
                features.push(std::sync::OnceLock::from(NameFeatures::build(
                    &node.name,
                    &mut interner,
                )));
            }
            offsets.push(features.len() as u32);
        }
        let alive = features.len();
        FeatureStore {
            interner,
            ids,
            features,
            columns: None,
            offsets,
            dead: vec![false; alive],
            dead_trees: Vec::new(),
            alive,
        }
    }

    /// Reassemble a store from snapshot parts: the rebuilt interner, the flat
    /// per-node feature columns, and the per-tree offsets (`tree_count + 1`
    /// entries, prefix sums of tree node counts). The dense id table is
    /// rederived from the offsets — node `n` of tree `t` is always
    /// `offsets[t] + n` — so it never needs to be serialized. Per-node
    /// features materialise lazily out of the columns.
    pub(crate) fn from_columns(
        interner: GramInterner,
        columns: FeatureColumns,
        offsets: Vec<u32>,
    ) -> Self {
        let node_count = columns.lower_offsets.len().saturating_sub(1);
        let mut ids = Vec::with_capacity(node_count);
        for (tree, window) in offsets.windows(2).enumerate() {
            for node in 0..(window[1] - window[0]) {
                ids.push(GlobalNodeId::new(
                    xsm_schema::TreeId(tree as u32),
                    xsm_schema::NodeId(node),
                ));
            }
        }
        let mut features = Vec::new();
        features.resize_with(node_count, std::sync::OnceLock::new);
        FeatureStore {
            interner,
            ids,
            features,
            columns: Some(columns),
            offsets,
            dead: vec![false; node_count],
            dead_trees: Vec::new(),
            alive: node_count,
        }
    }

    /// Append one tree's nodes to the store: dense slots for the new nodes are
    /// allocated at the tail, existing slots (ids, features, offsets, tombstone
    /// bits) are untouched. `tid` must be the next tree index — appends never
    /// leave holes in the tree table. New grams extend the shared interner.
    pub(crate) fn append_tree(&mut self, tid: TreeId, tree: &SchemaTree) {
        debug_assert_eq!(
            tid.index() + 1,
            self.offsets.len(),
            "appends allocate the next tree index"
        );
        for (nid, node) in tree.nodes() {
            self.ids.push(GlobalNodeId::new(tid, nid));
            self.features
                .push(std::sync::OnceLock::from(NameFeatures::build(
                    &node.name,
                    &mut self.interner,
                )));
            self.dead.push(false);
            self.alive += 1;
        }
        self.offsets.push(self.features.len() as u32);
    }

    /// Tombstone every node of tree `tid`, returning the dense range killed.
    /// Idempotent at the caller's discretion: tombstoning an already-dead tree
    /// returns `None` and changes nothing.
    pub(crate) fn tombstone_tree(&mut self, tid: TreeId) -> Option<std::ops::Range<usize>> {
        let range = self.tree_range(tid)?;
        match self.dead_trees.binary_search(&tid) {
            Ok(_) => return None,
            Err(pos) => self.dead_trees.insert(pos, tid),
        }
        for dense in range.clone() {
            debug_assert!(!self.dead[dense], "a tree dies as a whole, exactly once");
            self.dead[dense] = true;
            self.alive -= 1;
        }
        Some(range)
    }

    /// The dense-slot range of tree `tid`, or `None` for unknown trees.
    pub(crate) fn tree_range(&self, tid: TreeId) -> Option<std::ops::Range<usize>> {
        let t = tid.index();
        let start = *self.offsets.get(t)? as usize;
        let end = *self.offsets.get(t + 1)? as usize;
        Some(start..end)
    }

    /// Whether the dense slot is tombstoned. `dense` must be in bounds.
    #[inline]
    pub fn is_dead(&self, dense: usize) -> bool {
        self.dead[dense]
    }

    /// Whether tree `tid` has been tombstoned.
    pub fn is_tree_dead(&self, tid: TreeId) -> bool {
        self.dead_trees.binary_search(&tid).is_ok()
    }

    /// The tombstoned trees, ascending.
    pub fn dead_trees(&self) -> &[TreeId] {
        &self.dead_trees
    }

    /// Number of nodes that are *not* tombstoned.
    pub fn alive_len(&self) -> usize {
        self.alive
    }

    /// The slot's features, materialising them from the columns on first touch.
    /// `dense` must be in bounds (callers have checked against `len()`).
    fn slot(&self, dense: usize) -> &NameFeatures {
        self.features[dense].get_or_init(|| {
            self.columns
                .as_ref()
                .expect("an unfilled slot exists only in a column-backed store")
                .materialize(dense)
        })
    }

    /// The features of the dense slot `dense` (must be in bounds) — the
    /// index's internal dense-order access path.
    pub(crate) fn features_at(&self, dense: usize) -> &NameFeatures {
        self.slot(dense)
    }

    /// The shared gram interner (frozen between mutations: only a live
    /// append, via `NameIndex::append_tree`, extends it).
    pub fn interner(&self) -> &GramInterner {
        &self.interner
    }

    /// Number of nodes with features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the store covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The features of one node, or `None` for ids outside the repository the store
    /// was built over.
    pub fn features_of(&self, id: GlobalNodeId) -> Option<&NameFeatures> {
        let tree = id.tree.index();
        let start = *self.offsets.get(tree)? as usize;
        let end = *self.offsets.get(tree + 1)? as usize;
        let idx = start + id.node.index();
        if idx < end && idx < self.features.len() {
            Some(self.slot(idx))
        } else {
            None
        }
    }

    /// Iterate `(node id, features)` in the repository's canonical node order
    /// (materialising any still-lazy slots as it goes). Tombstoned nodes are
    /// *included* — this is the physical order a snapshot serializes; logical
    /// consumers want [`FeatureStore::iter_alive`].
    pub fn iter(&self) -> impl Iterator<Item = (GlobalNodeId, &NameFeatures)> + '_ {
        self.ids
            .iter()
            .copied()
            .enumerate()
            .map(move |(dense, id)| (id, self.slot(dense)))
    }

    /// [`FeatureStore::iter`] restricted to nodes that are not tombstoned — the
    /// node set an exhaustive matching pass scores.
    pub fn iter_alive(&self) -> impl Iterator<Item = (GlobalNodeId, &NameFeatures)> + '_ {
        self.ids
            .iter()
            .copied()
            .enumerate()
            .filter(move |(dense, _)| !self.dead[*dense])
            .map(move |(dense, id)| (id, self.slot(dense)))
    }

    /// Build features for a *query* name against the frozen interner (unseen grams
    /// get private non-colliding ids — see [`NameFeatures::build_query`]). Called
    /// once per personal-schema node, not once per candidate pair.
    pub fn query_features(&self, name: &str) -> NameFeatures {
        NameFeatures::build_query(name, &self.interner)
    }

    /// The interned-id signature of a query name for index lookups: the sorted,
    /// deduplicated ids of its grams **known to the interner**, plus the count of
    /// distinct grams overall (known + unknown — the denominator a count filter
    /// needs, since unknown grams can never match a posting but still dilute the
    /// overlap fraction).
    pub fn query_signature(&self, name: &str) -> (Vec<u32>, usize) {
        let (known, _, distinct, _) = self.query_profile(name);
        (known, distinct)
    }

    /// [`FeatureStore::query_signature`] plus per-gram positions and the query's
    /// character length — the **one** interner resolution every index-side
    /// consumer (candidate lookup, volume estimation, the query planner) shares,
    /// so no call site re-walks the query's grams. Returns `(known ids, packed
    /// first/last positions parallel to them, distinct gram count, char length)`.
    /// Positions are packed `first << 16 | last` (clamped to `u16`) in the
    /// padded gram stream, matching `NameFeatures::gram_positions`; they feed
    /// the positional q-gram filter.
    pub fn query_profile(&self, name: &str) -> (Vec<u32>, Vec<u32>, usize, usize) {
        let lower = crate::simd::lowercase(name);
        let mut occurrences: Vec<(u32, u32)> = Vec::new();
        let mut unknown: Vec<String> = Vec::new();
        let mut pos = 0u32;
        for_each_gram(&lower, self.interner.q(), |gram| {
            match self.interner.lookup(gram) {
                Some(id) => occurrences.push((id, pos)),
                None => {
                    if !unknown.iter().any(|g| g == gram) {
                        unknown.push(gram.to_string());
                    }
                }
            }
            pos += 1;
        });
        occurrences.sort_unstable();
        let mut known: Vec<u32> = Vec::with_capacity(occurrences.len());
        let mut known_pos: Vec<u32> = Vec::with_capacity(occurrences.len());
        for &(id, p) in &occurrences {
            let p16 = p.min(0xFFFF);
            if known.last() == Some(&id) {
                let packed = known_pos.last_mut().expect("parallel to known");
                *packed = (*packed & 0xFFFF_0000) | p16;
            } else {
                known.push(id);
                known_pos.push((p16 << 16) | p16);
            }
        }
        let distinct = known.len() + unknown.len();
        (known, known_pos, distinct, lower.chars().count())
    }

    /// The node ids covered by the store, in canonical (ascending `GlobalNodeId`)
    /// order — the dense-index → id translation table the length-bucketed
    /// [`crate::NameIndex`] postings are expressed in.
    pub fn node_ids(&self) -> &[GlobalNodeId] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{NodeId, SchemaNode, TreeBuilder, TreeId};
    use xsm_similarity::features::{fuzzy_features, SimScratch};
    use xsm_similarity::ngram::qgrams;

    fn repo() -> SchemaRepository {
        let other = TreeBuilder::new("contacts")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("emailAddress"))
            .build();
        SchemaRepository::from_trees(vec![paper_repository_fragment(), other])
    }

    #[test]
    fn store_covers_every_node_in_order() {
        let repo = repo();
        let store = FeatureStore::build(&repo, 3);
        assert_eq!(store.len(), repo.total_nodes());
        assert!(!store.is_empty());
        for (id, node) in repo.nodes() {
            let f = store.features_of(id).expect("every node has features");
            assert_eq!(&*f.lower, node.name.to_lowercase().as_str());
            assert_eq!(f.gram_total(), qgrams(&node.name.to_lowercase(), 3).len());
        }
        let mut seen = 0;
        for ((id, f), (rid, node)) in store.iter().zip(repo.nodes()) {
            assert_eq!(id, rid);
            assert_eq!(&*f.lower, node.name.to_lowercase().as_str());
            seen += 1;
        }
        assert_eq!(seen, store.len());
    }

    #[test]
    fn unknown_ids_have_no_features() {
        let repo = repo();
        let store = FeatureStore::build(&repo, 3);
        assert!(store
            .features_of(GlobalNodeId::new(TreeId(9), NodeId(0)))
            .is_none());
        assert!(store
            .features_of(GlobalNodeId::new(TreeId(0), NodeId(99)))
            .is_none());
    }

    #[test]
    fn query_features_score_against_store_features() {
        let repo = repo();
        let store = FeatureStore::build(&repo, 3);
        let q = store.query_features("emailAdress"); // typo: unseen grams
        let mut scratch = SimScratch::default();
        let (id, _) = repo
            .nodes()
            .find(|(_, n)| n.name == "emailAddress")
            .expect("node exists");
        let f = store.features_of(id).unwrap();
        let s = fuzzy_features(&q, f, &mut scratch);
        assert_eq!(
            s.to_bits(),
            xsm_similarity::compare_string_fuzzy("emailAdress", "emailAddress").to_bits()
        );
    }

    #[test]
    fn query_signature_counts_unknown_grams() {
        let repo = repo();
        let store = FeatureStore::build(&repo, 3);
        // A name made of grams the corpus cannot contain.
        let (known, distinct) = store.query_signature("qqq");
        assert!(known.is_empty());
        assert!(distinct > 0, "unknown grams still count as distinct");
        // A corpus name resolves every gram.
        let (known, distinct) = store.query_signature("person");
        assert_eq!(known.len(), distinct);
        assert!(known.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }

    #[test]
    fn store_build_skips_token_features() {
        // Tokens are only read by the token-set kernel; the engine's fuzzy
        // pipeline never touches them, so building the store must not pay for
        // tokenizing every repository name (ROADMAP "lazy token features").
        let repo = repo();
        let store = FeatureStore::build(&repo, 3);
        let mut scratch = SimScratch::default();
        let q = store.query_features("emailAdress");
        for (id, f) in store.iter() {
            let s = fuzzy_features(&q, f, &mut scratch);
            assert_eq!(
                s.to_bits(),
                xsm_similarity::compare_string_fuzzy("emailAdress", repo.name_of(id)).to_bits()
            );
        }
        assert!(
            store.iter().all(|(_, f)| !f.tokens_built()),
            "a fuzzy-only workload materialised token features"
        );
        // Token features still work when asked for, on demand.
        let (id, _) = repo
            .nodes()
            .find(|(_, n)| n.name == "emailAddress")
            .expect("node exists");
        assert_eq!(store.features_of(id).unwrap().tokens().len(), 2);
    }

    #[test]
    fn empty_repository_store() {
        let store = FeatureStore::build(&SchemaRepository::new(), 3);
        assert!(store.is_empty());
        assert!(store
            .features_of(GlobalNodeId::new(TreeId(0), NodeId(0)))
            .is_none());
    }
}
