//! The schema repository: a forest of schema trees with cached node labellings.

use serde::{Deserialize, Serialize};
use xsm_schema::stats::ForestStats;
use xsm_schema::{GlobalNodeId, SchemaNode, SchemaTree, TreeId, TreeLabeling};

/// A repository `R` of XML schema trees.
///
/// The paper treats `R` as "a single large tree" in formulas for brevity but implements
/// it as a forest; we store the forest explicitly. Each tree carries its precomputed
/// [`TreeLabeling`] so both the matcher (for `Δ_path`) and the clusterer (for the
/// k-means distance measure) get constant-time path-length queries.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct SchemaRepository {
    trees: Vec<SchemaTree>,
    #[serde(skip)]
    labelings: Vec<TreeLabeling>,
}

impl SchemaRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a repository from a forest of trees.
    pub fn from_trees(trees: Vec<SchemaTree>) -> Self {
        let labelings = trees.iter().map(TreeLabeling::build).collect();
        SchemaRepository { trees, labelings }
    }

    /// Build a repository from trees whose labellings are already available
    /// (snapshot loading ships the label arrays instead of re-walking every
    /// tree). One labelling per tree, in tree order; the caller vouches that
    /// each describes its tree.
    pub(crate) fn from_labeled_trees(trees: Vec<SchemaTree>, labelings: Vec<TreeLabeling>) -> Self {
        debug_assert_eq!(trees.len(), labelings.len());
        SchemaRepository { trees, labelings }
    }

    /// Add a tree and return its id.
    pub fn add_tree(&mut self, tree: SchemaTree) -> TreeId {
        let id = TreeId(self.trees.len() as u32);
        self.labelings.push(TreeLabeling::build(&tree));
        self.trees.push(tree);
        id
    }

    /// Number of trees in the forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// True when the repository holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Total number of nodes (elements + attributes) across all trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.len()).sum()
    }

    /// Access a tree by id.
    pub fn tree(&self, id: TreeId) -> Option<&SchemaTree> {
        self.trees.get(id.index())
    }

    /// Access a tree's labelling by id (rebuilding lazily after deserialization is the
    /// caller's job via [`SchemaRepository::rebuild_labelings`]).
    pub fn labeling(&self, id: TreeId) -> Option<&TreeLabeling> {
        self.labelings.get(id.index())
    }

    /// Recompute all labellings (needed after `serde` deserialization, which skips them).
    pub fn rebuild_labelings(&mut self) {
        self.labelings = self.trees.iter().map(TreeLabeling::build).collect();
    }

    /// Iterate over `(TreeId, &SchemaTree)` pairs.
    pub fn trees(&self) -> impl Iterator<Item = (TreeId, &SchemaTree)> + '_ {
        self.trees
            .iter()
            .enumerate()
            .map(|(i, t)| (TreeId(i as u32), t))
    }

    /// Iterate over every node in the repository.
    pub fn nodes(&self) -> impl Iterator<Item = (GlobalNodeId, &SchemaNode)> + '_ {
        self.trees().flat_map(|(tid, tree)| {
            tree.nodes()
                .map(move |(nid, node)| (GlobalNodeId::new(tid, nid), node))
        })
    }

    /// Look up a node's data by its global id.
    pub fn node(&self, id: GlobalNodeId) -> Option<&SchemaNode> {
        self.tree(id.tree)?.node(id.node)
    }

    /// Name of a node by global id (empty string for unknown ids).
    pub fn name_of(&self, id: GlobalNodeId) -> &str {
        self.tree(id.tree).map(|t| t.name_of(id.node)).unwrap_or("")
    }

    /// Tree (path-length) distance between two nodes **of the same tree**; `None` when
    /// the nodes live in different trees or either id is unknown. Cross-tree distance
    /// is undefined in the paper's model — clusters never span trees.
    pub fn distance(&self, a: GlobalNodeId, b: GlobalNodeId) -> Option<u32> {
        if a.tree != b.tree {
            return None;
        }
        self.labeling(a.tree)?.distance(a.node, b.node)
    }

    /// Depth of a node within its tree.
    pub fn depth(&self, id: GlobalNodeId) -> Option<u32> {
        self.labeling(id.tree)?.depth(id.node)
    }

    /// Absolute path of a node (e.g. `/lib/book/title`), prefixed by the tree id.
    pub fn describe(&self, id: GlobalNodeId) -> String {
        match self.tree(id.tree) {
            Some(t) => format!("{}{}", id.tree, t.absolute_path(id.node)),
            None => format!("{id}?"),
        }
    }

    /// Forest-level statistics (used by EXPERIMENTS.md and the examples).
    pub fn stats(&self) -> ForestStats {
        ForestStats::of(self.trees.iter())
    }

    /// All node ids of one tree.
    pub fn tree_node_ids(&self, id: TreeId) -> Vec<GlobalNodeId> {
        match self.tree(id) {
            Some(t) => t.node_ids().map(|n| GlobalNodeId::new(id, n)).collect(),
            None => Vec::new(),
        }
    }

    /// Does the repository contain the given global node id?
    pub fn contains(&self, id: GlobalNodeId) -> bool {
        self.tree(id.tree)
            .map(|t| (id.node.index()) < t.len())
            .unwrap_or(false)
    }

    /// Parent of a node within its tree.
    pub fn parent(&self, id: GlobalNodeId) -> Option<GlobalNodeId> {
        let p = self.tree(id.tree)?.parent(id.node)?;
        Some(GlobalNodeId::new(id.tree, p))
    }

    /// Children of a node within its tree.
    pub fn children(&self, id: GlobalNodeId) -> Vec<GlobalNodeId> {
        match self.tree(id.tree) {
            Some(t) => t
                .children(id.node)
                .iter()
                .map(|&c| GlobalNodeId::new(id.tree, c))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of edges of a tree.
    pub fn tree_edge_count(&self, id: TreeId) -> usize {
        self.tree(id).map(|t| t.edge_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::{paper_personal_schema, paper_repository_fragment};
    use xsm_schema::NodeId;

    fn two_tree_repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![paper_repository_fragment(), paper_personal_schema()])
    }

    #[test]
    fn empty_repository() {
        let r = SchemaRepository::new();
        assert!(r.is_empty());
        assert_eq!(r.tree_count(), 0);
        assert_eq!(r.total_nodes(), 0);
        assert_eq!(r.nodes().count(), 0);
        assert!(!r.contains(GlobalNodeId::new(TreeId(0), NodeId(0))));
    }

    #[test]
    fn from_trees_and_add_tree() {
        let mut r = two_tree_repo();
        assert_eq!(r.tree_count(), 2);
        assert_eq!(r.total_nodes(), 10);
        let id = r.add_tree(paper_personal_schema());
        assert_eq!(id, TreeId(2));
        assert_eq!(r.total_nodes(), 13);
        assert!(r.labeling(id).is_some());
    }

    #[test]
    fn node_lookup_and_names() {
        let r = two_tree_repo();
        let lib_root = GlobalNodeId::new(TreeId(0), NodeId(0));
        assert_eq!(r.name_of(lib_root), "lib");
        assert!(r.contains(lib_root));
        let unknown = GlobalNodeId::new(TreeId(9), NodeId(0));
        assert_eq!(r.name_of(unknown), "");
        assert!(r.node(unknown).is_none());
    }

    #[test]
    fn distance_within_and_across_trees() {
        let r = two_tree_repo();
        let t0 = r.tree(TreeId(0)).unwrap();
        let title = GlobalNodeId::new(TreeId(0), t0.find_by_name("title").unwrap());
        let address = GlobalNodeId::new(TreeId(0), t0.find_by_name("address").unwrap());
        assert_eq!(r.distance(title, address), Some(4));
        // Cross-tree distance is undefined.
        let other = GlobalNodeId::new(TreeId(1), NodeId(0));
        assert_eq!(r.distance(title, other), None);
    }

    #[test]
    fn parent_children_navigation() {
        let r = two_tree_repo();
        let t0 = r.tree(TreeId(0)).unwrap();
        let book = GlobalNodeId::new(TreeId(0), t0.find_by_name("book").unwrap());
        let kids = r.children(book);
        assert_eq!(kids.len(), 2);
        assert_eq!(r.parent(kids[0]), Some(book));
        let root = GlobalNodeId::new(TreeId(0), t0.root().unwrap());
        assert_eq!(r.parent(root), None);
    }

    #[test]
    fn describe_and_stats() {
        let r = two_tree_repo();
        let t0 = r.tree(TreeId(0)).unwrap();
        let title = GlobalNodeId::new(TreeId(0), t0.find_by_name("title").unwrap());
        assert_eq!(r.describe(title), "t0/lib/book/data/title");
        let s = r.stats();
        assert_eq!(s.tree_count, 2);
        assert_eq!(s.total_nodes, 10);
    }

    #[test]
    fn serde_roundtrip_requires_rebuild() {
        let r = two_tree_repo();
        let json = serde_json::to_string(&r).unwrap();
        let mut back: SchemaRepository = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tree_count(), 2);
        // Labelings are skipped by serde; distance queries need a rebuild.
        let t0 = back.tree(TreeId(0)).unwrap();
        let title = GlobalNodeId::new(TreeId(0), t0.find_by_name("title").unwrap());
        let addr = GlobalNodeId::new(TreeId(0), t0.find_by_name("address").unwrap());
        assert_eq!(back.distance(title, addr), None);
        back.rebuild_labelings();
        assert_eq!(back.distance(title, addr), Some(4));
    }

    #[test]
    fn tree_node_ids_cover_whole_tree() {
        let r = two_tree_repo();
        assert_eq!(r.tree_node_ids(TreeId(0)).len(), 7);
        assert_eq!(r.tree_node_ids(TreeId(1)).len(), 3);
        assert_eq!(r.tree_node_ids(TreeId(5)).len(), 0);
        assert_eq!(r.tree_edge_count(TreeId(0)), 6);
    }
}
