//! Property suite: the filter–verify candidate lookup is a pure optimisation.
//!
//! Under an **infinite** length window, `NameIndex::lookup_candidates` must return
//! exactly the classic merge-everything count filter's candidate set
//! (`lookup_approximate_baseline`): same ids, same (ascending) order — for every
//! merge policy, every q, and overlap fractions across the whole range. Under a
//! **finite** window the result is a subset of the baseline that never drops a
//! node whose fuzzy similarity clears the window's floor (the length-difference
//! bound is conservative with respect to the kernel's own normalization).
//!
//! Corpora are random forests over a small alphabet (maximising shared grams and
//! count-filter collisions) mixed with schema-ish names; queries include corpus
//! names, near-misses and corpus-unrelated strings.

use proptest::prelude::*;
use xsm_repo::index::MergeAlgorithm;
use xsm_repo::{
    CandidateQuery, CandidateScratch, LengthWindow, MergePolicy, NameIndex, SchemaRepository,
};
use xsm_schema::{SchemaNode, TreeBuilder};
use xsm_similarity::compare_string_fuzzy;

/// Build a forest from a flat name list, breaking it into trees of ~7 nodes.
fn forest_of(names: &[String]) -> SchemaRepository {
    let mut repo = SchemaRepository::new();
    for chunk in names.chunks(7) {
        let mut builder = TreeBuilder::new("t").root(SchemaNode::element(&chunk[0]));
        for name in &chunk[1..] {
            builder = builder.sibling(SchemaNode::element(name));
        }
        repo.add_tree(builder.build());
    }
    repo
}

const FRACTIONS: [f64; 3] = [0.0, 0.3, 0.99];
const FLOORS: [f64; 3] = [0.3, 0.6, 0.9];

proptest! {
    /// Infinite window ⇒ byte-identical candidate sets for both merge algorithms
    /// and the auto policy, across q ∈ {2, 3} and the overlap-fraction spread.
    #[test]
    fn infinite_window_replays_the_baseline(
        names in proptest::collection::vec("[a-d]{1,8}", 4..40),
        queries in proptest::collection::vec("[a-e]{0,10}", 1..6),
    ) {
        let repo = forest_of(&names);
        for q in [2usize, 3] {
            let index = NameIndex::build_with_q(&repo, q);
            let mut scratch = CandidateScratch::default();
            for query in &queries {
                for frac in FRACTIONS {
                    let baseline = index.lookup_approximate_baseline(query, frac);
                    for policy in [
                        MergePolicy::Auto,
                        MergePolicy::ScanCount,
                        MergePolicy::MergeSkip,
                        MergePolicy::ScanProbe,
                    ] {
                        let (got, _) = index.lookup_candidates_counted(
                            &CandidateQuery::new(query, frac),
                            policy,
                            &mut scratch,
                        );
                        prop_assert!(
                            got == baseline,
                            "q={} query={:?} frac={} policy={:?}: {:?} vs {:?}",
                            q, query, frac, policy, got, baseline
                        );
                    }
                    // The compatibility wrapper is the same path.
                    prop_assert_eq!(index.lookup_approximate(query, frac), baseline);
                }
            }
        }
    }

    /// Finite windows only ever remove candidates, and never one whose fuzzy
    /// similarity clears the floor the window was derived from.
    #[test]
    fn finite_window_is_a_conservative_subset(
        names in proptest::collection::vec("[a-d]{1,9}", 4..40),
        queries in proptest::collection::vec("[a-d]{0,11}", 1..5),
    ) {
        let repo = forest_of(&names);
        let index = NameIndex::build(&repo);
        let mut scratch = CandidateScratch::default();
        for query in &queries {
            for frac in FRACTIONS {
                let baseline = index.lookup_approximate_baseline(query, frac);
                for floor in FLOORS {
                    let cq = CandidateQuery::new(query, frac)
                        .with_length_window(LengthWindow::fuzzy_floor(floor));
                    for policy in [
                        MergePolicy::Auto,
                        MergePolicy::ScanCount,
                        MergePolicy::MergeSkip,
                        MergePolicy::ScanProbe,
                    ] {
                        let (windowed, _) =
                            index.lookup_candidates_counted(&cq, policy, &mut scratch);
                        // Subset, order preserved: every windowed id appears in the
                        // baseline, and the sequence stays ascending.
                        prop_assert!(windowed.windows(2).all(|w| w[0] < w[1]));
                        let mut walk = baseline.iter();
                        for id in &windowed {
                            prop_assert!(
                                walk.any(|b| b == id),
                                "windowed produced {:?} outside the baseline (query {:?})",
                                id, query
                            );
                        }
                        // Nothing above the floor may be dropped.
                        for &id in &baseline {
                            if windowed.contains(&id) {
                                continue;
                            }
                            let sim = compare_string_fuzzy(query, repo.name_of(id));
                            prop_assert!(
                                sim < floor,
                                "query {:?}: dropped {:?} with sim {} >= floor {}",
                                query, repo.name_of(id), sim, floor
                            );
                        }
                    }
                }
            }
        }
    }

    /// Scratch reuse across queries of different shapes never leaks state between
    /// lookups (counters reset through the touched list, cursors rebuilt).
    #[test]
    fn dirty_scratch_equals_fresh_scratch(
        names in proptest::collection::vec("[a-c]{1,7}", 4..30),
        queries in proptest::collection::vec("[a-c]{0,9}", 2..8),
    ) {
        let repo = forest_of(&names);
        let index = NameIndex::build(&repo);
        let mut reused = CandidateScratch::default();
        for (i, query) in queries.iter().enumerate() {
            let frac = FRACTIONS[i % FRACTIONS.len()];
            let floor = FLOORS[i % FLOORS.len()];
            let cq = CandidateQuery::new(query, frac)
                .with_length_window(LengthWindow::fuzzy_floor(floor));
            let policy = if i % 2 == 0 { MergePolicy::ScanCount } else { MergePolicy::MergeSkip };
            let (dirty, _) = index.lookup_candidates_counted(&cq, policy, &mut reused);
            let (fresh, _) =
                index.lookup_candidates_counted(&cq, policy, &mut CandidateScratch::default());
            prop_assert!(
                dirty == fresh,
                "query {:?} diverged on reused scratch",
                query
            );
        }
    }
}

/// The positional q-gram filter must actually fire — rejecting count-filter
/// survivors whose shared grams are displaced beyond the edit bound — while
/// never rejecting a candidate that clears the floor. Rotated names share the
/// full gram multiset (maximal count-filter collision) but displace every
/// gram by the rotation distance.
#[test]
fn positional_filter_rejects_displaced_grams_and_nothing_else() {
    let names: Vec<String> = vec![
        "abcdefghijkl".into(), // the query itself
        "ghijklabcdef".into(), // rotation by 6: same grams, all displaced
        "abcdefghijkx".into(), // one substitution: genuinely close
        "unrelatedzzz".into(),
    ];
    let repo = forest_of(&names);
    let index = NameIndex::build(&repo);
    let mut scratch = CandidateScratch::default();
    let query = "abcdefghijkl";
    let mut fired = false;
    for floor in [0.6, 0.75, 0.9] {
        let cq =
            CandidateQuery::new(query, 0.0).with_length_window(LengthWindow::fuzzy_floor(floor));
        let baseline = index.lookup_approximate_baseline(query, 0.0);
        let (got, stats) =
            index.lookup_candidates_counted(&cq, MergePolicy::ScanCount, &mut scratch);
        fired |= stats.positional_rejections > 0;
        for &id in &baseline {
            let sim = compare_string_fuzzy(query, repo.name_of(id));
            if sim >= floor {
                assert!(
                    got.contains(&id),
                    "floor {floor}: dropped {:?} with sim {sim}",
                    repo.name_of(id)
                );
            }
        }
    }
    assert!(
        fired,
        "the rotated twin was never positionally rejected at any floor"
    );
}

/// Deterministic large-ish corpus crossing the ScanCount/ScanProbe auto boundary:
/// common grams produce posting volumes past the crossover so the Auto policy
/// takes the probing merge, and the result must still replay the baseline.
#[test]
fn auto_policy_crossover_replays_the_baseline() {
    // The crossover volume depends on the active kernel tier (the vectorized
    // ScanCount core raises it), so size the corpus off the live threshold:
    // "shared" appears count/5 times and spans ~8 grams, putting its posting
    // volume well past any threshold-proportional corpus.
    let count = 5 * xsm_repo::simd::scan_count_max_volume() / 4;
    let names: Vec<String> = (0..count)
        .map(|i| match i % 5 {
            0 => format!("record{i:04}"),
            1 => format!("name{}", i % 37),
            2 => format!("address{}", i % 23),
            3 => "shared".to_string(),
            _ => format!("f{}x{}", i % 11, i % 7),
        })
        .collect();
    let repo = forest_of(&names);
    let index = NameIndex::build(&repo);
    let mut scratch = CandidateScratch::default();
    let mut saw_scan_probe = false;
    let mut saw_scan_count = false;
    for query in ["shared", "name3", "address7", "recard0100", "zzz"] {
        for frac in [0.0, 0.4, 0.8] {
            let baseline = index.lookup_approximate_baseline(query, frac);
            let (got, stats) = index.lookup_candidates_counted(
                &CandidateQuery::new(query, frac),
                MergePolicy::Auto,
                &mut scratch,
            );
            assert_eq!(got, baseline, "{query} frac={frac}");
            saw_scan_probe |= stats.algorithm == MergeAlgorithm::ScanProbe;
            saw_scan_count |=
                stats.algorithm == MergeAlgorithm::ScanCount && stats.volume_in_window > 0;
        }
    }
    assert!(saw_scan_probe, "no query crossed into ScanProbe");
    assert!(saw_scan_count, "no query stayed on ScanCount");
}
