//! Golden-file test for the snapshot format: the writer must be byte-stable
//! (same repository → same bytes, across runs and across code changes that
//! claim to keep `FORMAT_VERSION` at its current value), and a checked-in
//! snapshot written by an earlier build must load into exactly the state a
//! fresh build produces.
//!
//! Regenerating the golden file is a deliberate act — it means the byte
//! layout changed and `FORMAT_VERSION` must be bumped:
//!
//! ```text
//! XSM_UPDATE_GOLDEN=1 cargo test -p xsm-repo --test snapshot_golden
//! ```

use xsm_repo::snapshot::{SnapshotReader, SnapshotWriter, FORMAT_VERSION, SNAPSHOT_MAGIC};
use xsm_repo::{GeneratorConfig, NameIndex, RepositoryGenerator, SchemaRepository};
use xsm_schema::{GlobalNodeId, NodeId};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/snapshot_v2.bin");
const GOLDEN_GENERATION: u64 = 7;

/// The deterministic corpus the golden file is built from. The centroids are
/// a deterministic placeholder (each tree's root) — the golden test pins the
/// *format*, not the medoid algorithm, which lives upstream in xsm-core.
fn corpus() -> (SchemaRepository, NameIndex, Vec<Option<GlobalNodeId>>) {
    let repo = RepositoryGenerator::new(GeneratorConfig::small(42)).generate();
    let index = NameIndex::build(&repo);
    let centroids = repo
        .trees()
        .map(|(tid, tree)| (!tree.is_empty()).then(|| GlobalNodeId::new(tid, NodeId(0))))
        .collect();
    (repo, index, centroids)
}

fn corpus_bytes() -> Vec<u8> {
    let (repo, index, centroids) = corpus();
    SnapshotWriter::new(GOLDEN_GENERATION)
        .to_bytes(&repo, &index, &centroids)
        .expect("corpus serializes")
}

#[test]
fn writer_is_byte_stable_against_the_golden_file() {
    let bytes = corpus_bytes();
    assert_eq!(
        bytes,
        corpus_bytes(),
        "two writes of the same repository must be byte-identical"
    );
    if std::env::var_os("XSM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
        panic!(
            "golden file regenerated at {GOLDEN_PATH} ({} bytes) — \
             bump FORMAT_VERSION if the layout changed, then rerun without \
             XSM_UPDATE_GOLDEN",
            bytes.len()
        );
    }
    let golden = std::fs::read(GOLDEN_PATH).expect(
        "golden snapshot missing — regenerate with \
         XSM_UPDATE_GOLDEN=1 cargo test -p xsm-repo --test snapshot_golden",
    );
    assert_eq!(
        bytes, golden,
        "snapshot byte layout changed without a FORMAT_VERSION bump \
         (or the golden file is stale); see the module docs for the \
         regeneration procedure"
    );
}

#[test]
fn golden_file_loads_equivalent_to_a_fresh_build() {
    let golden = std::fs::read(GOLDEN_PATH).expect("golden snapshot present");
    assert_eq!(&golden[..8], &SNAPSHOT_MAGIC[..]);

    let snapshot = SnapshotReader::read_bytes(&golden).expect("golden snapshot loads");
    assert_eq!(snapshot.generation, GOLDEN_GENERATION);

    let (repo, index, centroids) = corpus();

    // Identity tree map for a whole-repository snapshot.
    assert_eq!(snapshot.tree_map.len(), repo.tree_count());
    for (local, tid) in snapshot.tree_map.iter().enumerate() {
        assert_eq!(tid.index(), local);
    }
    assert_eq!(snapshot.centroids, centroids);

    // Full load equivalence, proven by closure: re-serializing the loaded
    // state must reproduce the golden file byte for byte. Every field the
    // snapshot carries — tree structure, node metadata and properties, the
    // interner, every feature array, the posting arena and its directories —
    // feeds that serialization, so a single differing bit anywhere would
    // break the equality.
    let rewritten = SnapshotWriter::new(GOLDEN_GENERATION)
        .to_bytes(&snapshot.repository, &snapshot.index, &snapshot.centroids)
        .expect("loaded snapshot re-serializes");
    assert_eq!(
        rewritten, golden,
        "loading then re-writing the golden snapshot must be the identity"
    );

    // And the loaded state matches a fresh build of the same corpus.
    let fresh = SnapshotWriter::new(GOLDEN_GENERATION)
        .to_bytes(&repo, &index, &centroids)
        .expect("fresh build serializes");
    assert_eq!(fresh, golden);
}

#[test]
fn wide_gram_counts_round_trip() {
    // A single name repeating one gram 256+ times forces the writer off the
    // one-byte `gram_counts` section onto `gram_counts_wide`. `"a" * 300`
    // yields the gram "aaa" (q = 3) with multiplicity 298.
    use xsm_schema::{SchemaNode, TreeBuilder};

    let mut repo = SchemaRepository::new();
    repo.add_tree(
        TreeBuilder::new("t")
            .root(SchemaNode::element("a".repeat(300)))
            .sibling(SchemaNode::element("ordinary"))
            .build(),
    );
    let index = NameIndex::build(&repo);
    let centroids = vec![Some(GlobalNodeId::new(xsm_schema::TreeId(0), NodeId(0)))];
    let bytes = SnapshotWriter::new(1)
        .to_bytes(&repo, &index, &centroids)
        .expect("wide-count corpus serializes");

    let header = SnapshotReader::peek_bytes(&bytes).expect("header validates");
    let names: Vec<&str> = header.sections.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"gram_counts_wide"));
    assert!(!names.contains(&"gram_counts"));

    let snapshot = SnapshotReader::read_bytes(&bytes).expect("wide-count snapshot loads");
    let rewritten = SnapshotWriter::new(1)
        .to_bytes(&snapshot.repository, &snapshot.index, &snapshot.centroids)
        .expect("loaded snapshot re-serializes");
    assert_eq!(
        rewritten, bytes,
        "loading then re-writing a wide-count snapshot must be the identity"
    );
}

#[test]
fn tombstoned_snapshot_round_trips_and_stays_out_of_clean_snapshots() {
    use xsm_repo::index::CandidateQuery;
    use xsm_repo::{CandidateScratch, LiveRepository};

    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(23).with_target_elements(400)).generate();
    let mut live = LiveRepository::build(repo.clone());
    let extra =
        RepositoryGenerator::new(GeneratorConfig::small(24).with_target_elements(60)).generate();
    let appended: Vec<_> = extra.trees().map(|(_, t)| t.clone()).take(3).collect();
    live.append_trees(appended).unwrap();
    let victims = [xsm_schema::TreeId(1), xsm_schema::TreeId(3)];
    live.delete_trees(&victims).unwrap();

    let centroids = vec![None; live.repo().tree_count()];
    let bytes = SnapshotWriter::new(live.generation())
        .to_bytes(live.repo(), live.index(), &centroids)
        .expect("tombstoned repository serializes");

    // The optional section is present exactly when tombstones exist.
    let header = SnapshotReader::peek_bytes(&bytes).expect("header validates");
    assert!(header.sections.iter().any(|s| s.name == "tombstones"));
    let clean = SnapshotWriter::new(0)
        .to_bytes(
            &repo,
            &NameIndex::build(&repo),
            &vec![None; repo.tree_count()],
        )
        .expect("clean repository serializes");
    let clean_header = SnapshotReader::peek_bytes(&clean).expect("header validates");
    assert!(clean_header.sections.iter().all(|s| s.name != "tombstones"));

    // Loading restores the tombstone set and the exact live behaviour.
    let snapshot = SnapshotReader::read_bytes(&bytes).expect("tombstoned snapshot loads");
    assert_eq!(snapshot.index.tombstoned_trees(), &victims[..]);
    assert_eq!(
        snapshot.index.indexed_nodes(),
        live.index().indexed_nodes(),
        "alive node count must survive the round trip"
    );
    let mut scratch = CandidateScratch::default();
    for (_, tree) in repo.trees().take(5) {
        for (_, node) in tree.nodes().take(4) {
            let q = CandidateQuery::new(&node.name, 0.5);
            assert_eq!(
                snapshot.index.lookup_candidates(&q, &mut scratch),
                live.index().lookup_candidates(&q, &mut scratch),
                "candidates diverged after round trip for {:?}",
                node.name
            );
            assert_eq!(
                snapshot.index.lookup_exact(&node.name),
                live.index().lookup_exact(&node.name)
            );
        }
    }

    // Write → read → write is the identity.
    let rewritten = SnapshotWriter::new(live.generation())
        .to_bytes(&snapshot.repository, &snapshot.index, &snapshot.centroids)
        .expect("loaded snapshot re-serializes");
    assert_eq!(rewritten, bytes);
}

#[test]
fn peek_reports_the_header_without_reconstruction() {
    let golden = std::fs::read(GOLDEN_PATH).expect("golden snapshot present");
    let header = SnapshotReader::peek_bytes(&golden).expect("peek validates");
    let (repo, _, _) = corpus();
    assert_eq!(header.generation, GOLDEN_GENERATION);
    assert_eq!(header.tree_count as usize, repo.tree_count());
    assert_eq!(header.node_count as usize, repo.total_nodes());
    assert_eq!(header.sections.len(), 17);
    assert_eq!(FORMAT_VERSION, 2);
}
