//! Hostile-input suite for the snapshot reader: every way a file can be wrong
//! must map to the right [`SnapshotError`] variant — never a panic, never a
//! silently wrong index.
//!
//! Coverage: truncation at *every* section boundary (and inside the preamble,
//! header and footer), a flipped byte in *every* section (attributed to that
//! section by name), magic/version mismatch, generation mismatch, and a few
//! malformed-but-checksummed payloads (the checksums are recomputed so only
//! the reconstruction validation can catch them).

use xsm_repo::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, FORMAT_VERSION};
use xsm_repo::{GeneratorConfig, NameIndex, RepositoryGenerator};
use xsm_schema::{GlobalNodeId, NodeId};

/// A small but fully featured snapshot (multiple trees, attributes,
/// properties, a real index) to mutate.
fn snapshot_bytes() -> Vec<u8> {
    let repo = RepositoryGenerator::new(GeneratorConfig::small(9)).generate();
    let index = NameIndex::build(&repo);
    let centroids: Vec<Option<GlobalNodeId>> = repo
        .trees()
        .map(|(tid, tree)| (!tree.is_empty()).then(|| GlobalNodeId::new(tid, NodeId(0))))
        .collect();
    SnapshotWriter::new(3)
        .to_bytes(&repo, &index, &centroids)
        .expect("corpus serializes")
}

/// Byte offset where the section region starts (end of the JSON header).
fn body_start(bytes: &[u8]) -> usize {
    let header_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    16 + header_len
}

#[test]
fn intact_snapshot_loads() {
    let bytes = snapshot_bytes();
    let snapshot = SnapshotReader::read_bytes(&bytes).expect("intact bytes load");
    assert_eq!(snapshot.generation, 3);
}

#[test]
fn truncation_at_every_section_boundary_fails_closed() {
    let bytes = snapshot_bytes();
    let header = SnapshotReader::peek_bytes(&bytes).expect("intact header");
    let start = body_start(&bytes);

    // Cut the file exactly at the start of each section: the first missing
    // section is reported as truncation (its directory entry points past the
    // end), and nothing panics.
    for entry in &header.sections {
        let cut = start + entry.offset as usize;
        let err = SnapshotReader::read_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut at section `{}` start gave {err:?}",
            entry.name
        );
    }
    // And one byte into each section's payload (a torn write mid-section).
    for entry in &header.sections {
        if entry.len == 0 {
            continue;
        }
        let cut = start + entry.offset as usize + 1;
        let err = SnapshotReader::read_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut inside section `{}` gave {err:?}",
            entry.name
        );
    }
    // Losing only the footer is also truncation.
    let err = SnapshotReader::read_bytes(&bytes[..bytes.len() - 8]).unwrap_err();
    assert!(matches!(err, SnapshotError::Truncated { .. }));
}

#[test]
fn truncation_inside_the_preamble_and_header() {
    let bytes = snapshot_bytes();
    for cut in [0, 3, 7] {
        let err = SnapshotReader::read_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut at {cut} gave {err:?}"
        );
    }
    // Magic intact but version/header-length missing.
    for cut in [8, 12, 15] {
        let err = SnapshotReader::read_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated { .. }),
            "cut at {cut} gave {err:?}"
        );
    }
    // Mid-header cut.
    let err = SnapshotReader::read_bytes(&bytes[..20]).unwrap_err();
    assert!(matches!(err, SnapshotError::Truncated { .. }));
}

#[test]
fn a_flipped_byte_in_any_section_names_that_section() {
    let bytes = snapshot_bytes();
    let header = SnapshotReader::peek_bytes(&bytes).expect("intact header");
    let start = body_start(&bytes);

    for entry in &header.sections {
        if entry.len == 0 {
            continue;
        }
        let mut corrupt = bytes.clone();
        // Flip a byte in the middle of the payload.
        let at = start + entry.offset as usize + (entry.len as usize / 2);
        corrupt[at] ^= 0x40;
        let err = SnapshotReader::read_bytes(&corrupt).unwrap_err();
        match err {
            SnapshotError::SectionChecksum { ref section } => {
                assert_eq!(
                    section, &entry.name,
                    "corruption in `{}` attributed to `{section}`",
                    entry.name
                );
            }
            other => panic!(
                "flipped byte in `{}` gave {other:?}, want SectionChecksum",
                entry.name
            ),
        }
    }
}

#[test]
fn a_flipped_footer_byte_is_a_footer_checksum_failure() {
    let mut bytes = snapshot_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let err = SnapshotReader::read_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::FooterChecksum), "{err:?}");
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = snapshot_bytes();
    bytes[0] = b'Y';
    let err = SnapshotReader::read_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::BadMagic), "{err:?}");
    // An unrelated file is also BadMagic, not a panic.
    let err = SnapshotReader::read_bytes(b"not a snapshot at all").unwrap_err();
    assert!(matches!(err, SnapshotError::BadMagic), "{err:?}");
}

#[test]
fn wrong_version_reports_the_version_found() {
    let mut bytes = snapshot_bytes();
    let next = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&next.to_le_bytes());
    match SnapshotReader::read_bytes(&bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found } => assert_eq!(found, next),
        other => panic!("{other:?}"),
    }
}

#[test]
fn generation_mismatch_reports_both_generations() {
    let bytes = snapshot_bytes();
    let snapshot = SnapshotReader::read_bytes(&bytes).expect("intact bytes load");
    match snapshot.expect_generation(99).unwrap_err() {
        SnapshotError::GenerationMismatch { expected, found } => {
            assert_eq!(expected, 99);
            assert_eq!(found, 3);
        }
        other => panic!("{other:?}"),
    }
    // The matching generation passes through.
    let snapshot = SnapshotReader::read_bytes(&bytes).unwrap();
    assert!(snapshot.expect_generation(3).is_ok());
}

#[test]
fn missing_file_is_an_io_error() {
    let err = SnapshotReader::read("/nonexistent/path/shard-0.xsmsnap").unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
}

#[test]
fn garbage_header_that_checksums_clean_is_malformed() {
    // Hand-build a file whose preamble and footer are valid but whose header
    // is not a SnapshotHeader: validation must fail with Malformed (from the
    // header parse), not panic.
    let header = b"{\"not\": \"a header\"}";
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"XSMSNAP1");
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(header.len() as u32).to_le_bytes());
    bytes.extend_from_slice(header);
    let footer = checksum64(header);
    bytes.extend_from_slice(&footer.to_le_bytes());
    let err = SnapshotReader::read_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed { .. }), "{err:?}");
}

#[test]
fn header_length_overflow_is_truncated_not_panic() {
    let mut bytes = snapshot_bytes();
    bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = SnapshotReader::read_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::Truncated { .. }), "{err:?}");
}

/// The snapshot checksum — four-lane word-folding FNV variant, duplicated here
/// so the test can forge checksummed files without reaching into crate
/// internals. Must match `snapshot::format::checksum64`.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEEDS: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x9e37_79b9_7f4a_7c15,
        0x8422_2325_cbf2_9ce4,
        0x7f4a_7c15_9e37_79b9,
    ];
    let mut lanes = SEEDS;
    let mut chunks = bytes.chunks_exact(32);
    for c in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut hash = lanes[0];
    for lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash = (hash ^ b as u64).wrapping_mul(PRIME);
    }
    (hash ^ bytes.len() as u64).wrapping_mul(PRIME)
}
