//! Micro-benchmarks of the string-similarity kernels used by the element matcher.
//! The fuzzy kernel is the inner loop of the whole element-matching step
//! (`|N_s| · |N_R|` calls), so its cost directly scales the paper's step ②.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xsm_similarity::{affix, compare_string_fuzzy, edit, jaro, ngram, token};

const PAIRS: &[(&str, &str)] = &[
    ("name", "customerName"),
    ("address", "shippingAddress"),
    ("email", "e-mail"),
    ("authorName", "author"),
    ("publicationYear", "year"),
    ("title", "subtitle"),
    ("telephone", "phone"),
    ("identifier", "id"),
];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity-kernels");
    group.bench_function("compare_string_fuzzy", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(compare_string_fuzzy(black_box(a), black_box(s)));
            }
        })
    });
    group.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(edit::levenshtein(black_box(a), black_box(s)));
            }
        })
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(jaro::jaro_winkler(black_box(a), black_box(s)));
            }
        })
    });
    group.bench_function("trigram_dice", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(ngram::ngram_similarity(black_box(a), black_box(s), 3));
            }
        })
    });
    group.bench_function("token_set", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(token::token_set_similarity(black_box(a), black_box(s)));
            }
        })
    });
    group.bench_function("affix", |b| {
        b.iter(|| {
            for (a, s) in PAIRS {
                black_box(affix::affix_similarity(black_box(a), black_box(s)));
            }
        })
    });
    group.finish();
}

fn bench_bounded_prefilter(c: &mut Criterion) {
    // The approximate-string-join style early exit vs the full kernel on a skewed
    // workload where most pairs are hopeless (the realistic element-matching regime).
    let names: Vec<String> = (0..64)
        .map(|i| format!("unrelatedElementName{i:03}"))
        .collect();
    c.bench_function("fuzzy_full_vs_query", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in &names {
                acc += compare_string_fuzzy("email", n);
            }
            black_box(acc)
        })
    });
    c.bench_function("fuzzy_bounded_vs_query", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in &names {
                if let Some(s) =
                    xsm_similarity::fuzzy::compare_string_fuzzy_bounded("email", n, 0.6)
                {
                    acc += s;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_kernels, bench_bounded_prefilter);
criterion_main!(benches);
