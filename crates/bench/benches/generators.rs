//! Benchmarks of the schema-mapping generators: Branch & Bound (the paper's choice)
//! against exhaustive enumeration, beam search and A*. The B&B-vs-exhaustive pair is
//! the paper's own ablation ("B&B tested 30 times less partial mappings").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use xsm_matcher::generator::astar::AStarGenerator;
use xsm_matcher::generator::beam::BeamSearchGenerator;
use xsm_matcher::generator::branch_and_bound::{BranchAndBoundConfig, BranchAndBoundGenerator};
use xsm_matcher::generator::exhaustive::ExhaustiveGenerator;
use xsm_matcher::{CandidateSet, MappingGenerator, MatchingProblem};
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};

fn setup() -> (MatchingProblem, SchemaRepository, CandidateSet) {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::small(13)
            .with_target_elements(1500)
            .with_seed(13),
    )
    .generate();
    let problem = MatchingProblem::paper_experiment();
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.55),
    );
    (problem, repo, candidates)
}

fn bench_generators(c: &mut Criterion) {
    let (problem, repo, candidates) = setup();
    let mut group = c.benchmark_group("mapping-generators");
    group.sample_size(10);

    group.bench_function("branch_and_bound", |b| {
        let g = BranchAndBoundGenerator::new();
        b.iter(|| {
            black_box(g.generate(&problem, &repo, &candidates))
                .mappings
                .len()
        })
    });
    group.bench_function("branch_and_bound_no_bounding", |b| {
        let g = BranchAndBoundGenerator::with_config(BranchAndBoundConfig {
            use_bounding: false,
            ..Default::default()
        });
        b.iter(|| {
            black_box(g.generate(&problem, &repo, &candidates))
                .mappings
                .len()
        })
    });
    group.bench_function("exhaustive", |b| {
        let g = ExhaustiveGenerator::new();
        b.iter(|| {
            black_box(g.generate(&problem, &repo, &candidates))
                .mappings
                .len()
        })
    });
    group.bench_function("beam_width_32", |b| {
        let g = BeamSearchGenerator::new(32);
        b.iter(|| {
            black_box(g.generate(&problem, &repo, &candidates))
                .mappings
                .len()
        })
    });
    group.bench_function("a_star", |b| {
        let g = AStarGenerator::new();
        b.iter(|| {
            black_box(g.generate(&problem, &repo, &candidates))
                .mappings
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
