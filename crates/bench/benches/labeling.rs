//! Benchmarks of the node-labelling substrate: building the labelling and answering
//! tree-distance queries. The paper relies on node labelling to make the k-means
//! distance computations cheap (Sec. 4, "Distance measure"); this bench quantifies the
//! gain over the naive parent-walking distance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xsm_repo::{GeneratorConfig, RepositoryGenerator};
use xsm_schema::TreeLabeling;

fn bench_labeling(c: &mut Criterion) {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::small(5)
            .with_target_elements(3000)
            .with_seed(5),
    )
    .generate();
    // Pick the largest tree for the query benches.
    let (tree_id, tree) = repo
        .trees()
        .max_by_key(|(_, t)| t.len())
        .expect("repository is not empty");
    let labeling = repo.labeling(tree_id).unwrap().clone();
    let nodes: Vec<_> = tree.node_ids().collect();

    let mut group = c.benchmark_group("tree-distance");
    group.bench_function(BenchmarkId::new("build_labeling", tree.len()), |b| {
        b.iter(|| black_box(TreeLabeling::build(black_box(tree))))
    });
    group.bench_function(BenchmarkId::new("labeled_distance", tree.len()), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (i, &a) in nodes.iter().enumerate().step_by(3) {
                let b_node = nodes[(i * 7 + 1) % nodes.len()];
                acc += labeling.distance(a, b_node).unwrap_or(0) as u64;
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("naive_distance", tree.len()), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (i, &a) in nodes.iter().enumerate().step_by(3) {
                let b_node = nodes[(i * 7 + 1) % nodes.len()];
                acc += tree.distance(a, b_node).unwrap_or(0) as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_labeling);
criterion_main!(benches);
