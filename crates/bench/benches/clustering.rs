//! Benchmarks of the clustering step and the end-to-end clustered pipeline against the
//! non-clustered baseline — the headline efficiency comparison of the paper
//! (clustering time + per-cluster generation vs whole-tree generation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xsm_core::{ClusteredMatcher, ClusteringConfig, ClusteringVariant, KMeansClusterer};
use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use xsm_matcher::generator::branch_and_bound::BranchAndBoundGenerator;
use xsm_matcher::{CandidateSet, MatchingProblem};
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};

fn setup() -> (MatchingProblem, SchemaRepository, CandidateSet) {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::small(17)
            .with_target_elements(2000)
            .with_seed(17),
    )
    .generate();
    let problem = MatchingProblem::paper_experiment();
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.55),
    );
    (problem, repo, candidates)
}

fn bench_kmeans(c: &mut Criterion) {
    let (_, repo, candidates) = setup();
    let mut group = c.benchmark_group("kmeans-clustering");
    group.sample_size(10);
    for join in [2u32, 3, 4] {
        group.bench_function(format!("join_distance_{join}"), |b| {
            let clusterer =
                KMeansClusterer::new(ClusteringConfig::default().with_join_distance(join));
            b.iter(|| black_box(clusterer.cluster(&repo, &candidates)).0.len())
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let (problem, repo, candidates) = setup();
    let generator = BranchAndBoundGenerator::new();
    let mut group = c.benchmark_group("clustered-pipeline");
    group.sample_size(10);
    for variant in ClusteringVariant::all() {
        group.bench_function(format!("variant_{}", variant.label()), |b| {
            let matcher = ClusteredMatcher::for_variant(variant);
            b.iter(|| {
                black_box(matcher.run_on_candidates(&problem, &repo, &candidates, &generator))
                    .mappings
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_pipeline);
criterion_main!(benches);
