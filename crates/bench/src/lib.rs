//! # xsm-bench — experiment harness
//!
//! Reproduces every table and figure of the paper's evaluation (Sec. 5):
//!
//! | Experiment | Binary | Library entry point |
//! |---|---|---|
//! | Tab. 1a + 1b (+ clustering-time paragraph) | `table1` | [`experiments::run_table1`] |
//! | Fig. 4 (cluster-size distribution per reclustering strategy) | `fig4` | [`experiments::run_fig4`] |
//! | Fig. 5 (preserved mappings vs δ per clustering variant) | `fig5` | [`experiments::run_fig5`] |
//! | Fig. 6 (preserved mappings vs δ per α) | `fig6` | [`experiments::run_fig6`] |
//!
//! All experiments share one [`workload::ExperimentConfig`]: a seeded synthetic
//! repository standing in for the paper's crawled corpus (see DESIGN.md) and the
//! paper's `name / address / email` personal schema. Binaries print both a
//! human-readable table and tab-separated values, and accept `key=value` overrides
//! (`seed=…`, `elements=…`, `delta=…`, `alpha=…`, `minsim=…`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workload;

pub use workload::{ExperimentConfig, Workload};

/// The host's core count as every bench JSON records it — throughput numbers
/// are meaningless without knowing the parallelism they were measured on.
pub fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether a row ran with more worker threads than the host has cores: its
/// scaling numbers measure oversubscription, not the engine. Benches flag such
/// rows `"underprovisioned": true` instead of silently reporting them.
pub fn underprovisioned(workers: usize) -> bool {
    workers > cores()
}
