//! The shared experimental workload (Sec. 5 of the paper).
//!
//! "The personal schema has nodes 'name', 'address', and 'email' … The personal schema
//! is matched against the repository with 9759 elements, distributed over 262 trees.
//! Bellflower is asked to discover all the schema mappings s ↦ t for which
//! Δ(s,t) ≥ 0.75. In this experiment, Bellflower's element matcher produces 4520
//! mapping elements."
//!
//! The crawled repository is replaced by the seeded synthetic corpus (DESIGN.md,
//! substitution 1); the scale and the personal schema are the paper's.

use serde::{Deserialize, Serialize};
use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use xsm_matcher::{CandidateSet, MatchingProblem, ObjectiveConfig};
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};

/// Parameters of one experiment run. All binaries accept `key=value` overrides for
/// these fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Seed of the synthetic repository.
    pub seed: u64,
    /// Target repository size in elements (the paper's default experiment: 9 759).
    pub elements: usize,
    /// Objective threshold δ.
    pub delta: f64,
    /// Objective weight α.
    pub alpha: f64,
    /// Element-matching similarity floor.
    pub min_similarity: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 2006,
            elements: 9_759,
            delta: 0.75,
            alpha: 0.5,
            min_similarity: 0.35,
        }
    }
}

impl ExperimentConfig {
    /// A scaled-down configuration for unit/integration tests and quick smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            seed: 7,
            elements: 1_200,
            ..Self::default()
        }
    }

    /// Parse `key=value` command-line overrides (`seed`, `elements`, `delta`, `alpha`,
    /// `minsim`). Unknown keys are reported as errors so typos do not silently run the
    /// default experiment.
    pub fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "delta" => self.delta = value.parse().map_err(|e| format!("delta: {e}"))?,
                "alpha" => self.alpha = value.parse().map_err(|e| format!("alpha: {e}"))?,
                "minsim" => {
                    self.min_similarity = value.parse().map_err(|e| format!("minsim: {e}"))?
                }
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        Ok(self)
    }
}

/// A fully prepared workload: problem, repository and the shared mapping elements.
pub struct Workload {
    /// The experiment parameters the workload was built from.
    pub config: ExperimentConfig,
    /// The matching problem (personal schema, objective, δ).
    pub problem: MatchingProblem,
    /// The synthetic repository.
    pub repository: SchemaRepository,
    /// The mapping elements produced by the element-matching step (shared by all
    /// variants, as in the paper).
    pub candidates: CandidateSet,
}

impl Workload {
    /// Build the workload for a configuration: generate the repository, build the
    /// personal schema, run element matching once.
    pub fn build(config: ExperimentConfig) -> Self {
        let repository = RepositoryGenerator::new(
            GeneratorConfig::paper_default()
                .with_seed(config.seed)
                .with_target_elements(config.elements),
        )
        .generate();
        let mut problem = MatchingProblem::paper_experiment();
        problem.threshold = config.delta;
        problem.objective = ObjectiveConfig::default().with_alpha(config.alpha);
        let candidates = match_elements(
            &problem.personal,
            &repository,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(config.min_similarity),
        );
        Workload {
            config,
            problem,
            repository,
            candidates,
        }
    }

    /// A one-line description of the workload scale, analogous to the paper's
    /// experiment paragraph.
    pub fn describe(&self) -> String {
        format!(
            "repository: {} elements over {} trees; personal schema: {} nodes ({}); \
             mapping elements: {} ({} distinct repository nodes); δ={}, α={}",
            self.repository.total_nodes(),
            self.repository.tree_count(),
            self.problem.personal_size(),
            self.problem
                .personal_nodes()
                .iter()
                .map(|&n| self.problem.personal.name_of(n))
                .collect::<Vec<_>>()
                .join(", "),
            self.candidates.total_candidates(),
            self.candidates.distinct_repo_nodes(),
            self.config.delta,
            self.config.alpha,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_parameters() {
        let c = ExperimentConfig::default();
        assert_eq!(c.elements, 9_759);
        assert_eq!(c.delta, 0.75);
        assert_eq!(c.alpha, 0.5);
    }

    #[test]
    fn arg_parsing_applies_overrides_and_rejects_junk() {
        let c = ExperimentConfig::default()
            .apply_args(vec![
                "seed=9".into(),
                "delta=0.8".into(),
                "elements=500".into(),
            ])
            .unwrap();
        assert_eq!(c.seed, 9);
        assert_eq!(c.delta, 0.8);
        assert_eq!(c.elements, 500);
        assert!(ExperimentConfig::default()
            .apply_args(vec!["bogus=1".into()])
            .is_err());
        assert!(ExperimentConfig::default()
            .apply_args(vec!["seed".into()])
            .is_err());
        assert!(ExperimentConfig::default()
            .apply_args(vec!["delta=abc".into()])
            .is_err());
    }

    #[test]
    fn smoke_workload_builds_and_is_useful() {
        let w = Workload::build(ExperimentConfig::smoke());
        assert!(w.repository.total_nodes() >= 1_200);
        assert!(w.repository.tree_count() > 10);
        assert_eq!(w.problem.personal_size(), 3);
        assert!(w.candidates.total_candidates() > 60);
        assert!(w.candidates.is_useful());
        let description = w.describe();
        assert!(description.contains("name, address, email"));
    }
}
