//! Live-ingest throughput: appending and tombstone-deleting trees on a
//! serving [`MatchEngine`] vs. rebuilding the engine from scratch at the same
//! logical content.
//!
//! ```text
//! cargo run -p xsm-bench --bin ingest --release \
//!     [seed=N] [sizes=10000,100000] [frac=0.01] [queries=N] [workers=N] \
//!     [out=BENCH_ingest.json]
//! ```
//!
//! Per corpus size the harness builds one engine, then mutates **1%** of its
//! trees (`frac=`): that many fresh trees appended in one batch, that many
//! existing trees deleted in another — the churn a live schema repository
//! sees, applied with `MatchEngine::{append_trees, delete_trees}` and **no
//! rebuild**. The comparison leg pays what the same churn costs without live
//! mutation: constructing a fresh engine (index build, feature extraction)
//! over the final logical content. Both engines then answer the same seeded
//! query mix and the harness asserts the order-sensitive answer checksums are
//! **identical** before reporting — an incremental index that answers
//! differently from the rebuild is a bug, not a speedup. The headline per
//! size is `speedup = rebuild_s / (append_s + delete_s)`.

use std::time::Instant;

use serde::Serialize;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_schema::{SchemaTree, TreeId};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{EngineConfig, MatchEngine, MatchQuery, QueryStrategy};

struct IngestConfig {
    seed: u64,
    sizes: Vec<usize>,
    /// Fraction of the tree count appended and (separately) deleted.
    frac: f64,
    queries: usize,
    workers: usize,
    out: String,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            seed: 2006,
            sizes: vec![10_000, 100_000],
            frac: 0.01,
            queries: 24,
            workers: 1,
            out: "BENCH_ingest.json".to_string(),
        }
    }
}

impl IngestConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "sizes" => {
                    self.sizes = value
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("sizes: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "frac" => self.frac = value.parse().map_err(|e| format!("frac: {e}"))?,
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "workers" => self.workers = value.parse().map_err(|e| format!("workers: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        self.queries = self.queries.max(1);
        self.workers = self.workers.max(1);
        if self.sizes.is_empty() {
            return Err("sizes must name at least one corpus size".to_string());
        }
        if !(self.frac > 0.0 && self.frac <= 1.0) {
            return Err("frac must be within (0, 1]".to_string());
        }
        Ok(self)
    }
}

/// One corpus size's live-mutation vs. rebuild comparison.
#[derive(Serialize)]
struct SizeRow {
    nodes: usize,
    trees: usize,
    /// Trees appended (one batch) and deleted (one batch) — `frac` of the forest each.
    appended_trees: usize,
    deleted_trees: usize,
    /// Postings tombstoned by the delete batch.
    postings_dropped: usize,
    /// Wall time of the one-batch live append, seconds.
    append_s: f64,
    /// Wall time of the one-batch live delete, seconds.
    delete_s: f64,
    /// append_s + delete_s: the full churn, applied live.
    incremental_s: f64,
    /// Wall time of a from-scratch engine build over the final logical content.
    rebuild_s: f64,
    /// rebuild_s / incremental_s — the acceptance headline.
    speedup: f64,
    /// Worker threads the engines ran with; flagged when beyond the host cores.
    workers: usize,
    underprovisioned: bool,
    /// Order-sensitive checksum over every response digest of the query mix.
    live_checksum: u64,
    rebuild_checksum: u64,
    /// The two checksums agree: the live engine answers identically.
    answers_identical: bool,
}

#[derive(Serialize)]
struct IngestRecord {
    bench: String,
    seed: u64,
    frac: f64,
    queries: usize,
    cores: usize,
    rows: Vec<SizeRow>,
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_workers(workers)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

/// The seeded query mix both engines answer, derived from the *base*
/// repository so the mix is independent of the mutation under test.
fn query_mix(repo: &SchemaRepository, queries: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            MatchQuery::new(personal)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(if i % 2 == 0 {
                    QueryStrategy::Auto
                } else {
                    QueryStrategy::IndexPruned
                })
        })
        .collect()
}

/// Order-sensitive FNV-1a over every response digest — pins the strategy,
/// counts, every score bit and every node id of every answer in the mix.
fn answer_checksum(engine: &MatchEngine, queries: &[MatchQuery]) -> u64 {
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    for query in queries {
        for b in engine.answer_inline(query).result_digest().bytes() {
            checksum ^= b as u64;
            checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    checksum
}

fn run_size(config: &IngestConfig, nodes: usize) -> SizeRow {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(nodes),
    )
    .generate();
    let tree_count = repo.tree_count();
    let churn = ((tree_count as f64 * config.frac).round() as usize).max(1);
    eprintln!(
        "  {} nodes over {tree_count} trees; churn = {churn} appends + {churn} deletes",
        repo.total_nodes()
    );

    // The appended trees: a disjoint seeded corpus, `churn` trees of it.
    let appended: Vec<SchemaTree> = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed ^ 0x9e37_79b9)
            .with_target_elements((nodes / tree_count.max(1)) * churn + 64),
    )
    .generate()
    .trees()
    .map(|(_, t)| t.clone())
    .take(churn)
    .collect();
    let appended_trees = appended.len();
    // Victims spread across the id range, so the delete touches many segments.
    let victims: Vec<TreeId> = (0..churn)
        .map(|i| TreeId((i * tree_count / churn) as u32))
        .collect();

    let queries = query_mix(&repo, config.queries);

    // Live leg: one engine, mutated in place while it could keep serving.
    let live = MatchEngine::new(repo.clone(), engine_config(config.workers));
    let start = Instant::now();
    live.append_trees(appended.clone())
        .expect("append succeeds");
    let append_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let postings_dropped = live.delete_trees(&victims).expect("delete succeeds");
    let delete_s = start.elapsed().as_secs_f64();
    let incremental_s = append_s + delete_s;

    // Rebuild leg: what the same churn costs without live mutation — a fresh
    // engine over the final logical content (deleted trees as empty
    // positional placeholders, exactly the live engine's logical state).
    let mut rebuilt = SchemaRepository::new();
    for (tid, tree) in repo.trees() {
        if victims.binary_search(&tid).is_ok() {
            rebuilt.add_tree(SchemaTree::new(tree.name()));
        } else {
            rebuilt.add_tree(tree.clone());
        }
    }
    for tree in appended {
        rebuilt.add_tree(tree);
    }
    let start = Instant::now();
    let rebuild = MatchEngine::new(rebuilt, engine_config(config.workers));
    let rebuild_s = start.elapsed().as_secs_f64();

    // Guard the numbers: identical answers, or no report at all.
    let live_checksum = answer_checksum(&live, &queries);
    let rebuild_checksum = answer_checksum(&rebuild, &queries);
    assert_eq!(
        live_checksum, rebuild_checksum,
        "live engine diverged from the rebuild at {nodes} nodes"
    );

    SizeRow {
        nodes,
        trees: tree_count,
        appended_trees,
        deleted_trees: victims.len(),
        postings_dropped,
        append_s,
        delete_s,
        incremental_s,
        rebuild_s,
        speedup: rebuild_s / incremental_s,
        workers: config.workers,
        underprovisioned: xsm_bench::underprovisioned(config.workers),
        live_checksum,
        rebuild_checksum,
        answers_identical: live_checksum == rebuild_checksum,
    }
}

fn main() {
    let config = match IngestConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ingest [seed=N] [sizes=10000,100000] [frac=0.01] [queries=N] \
                 [workers=N] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "live ingest vs rebuild (seed {}, churn {:.1}% of trees)…",
        config.seed,
        config.frac * 100.0
    );
    let rows: Vec<SizeRow> = config.sizes.iter().map(|&n| run_size(&config, n)).collect();

    println!("nodes\tappend_s\tdelete_s\trebuild_s\tspeedup\tidentical");
    for row in &rows {
        println!(
            "{}\t{:.4}\t{:.4}\t{:.3}\t{:.1}\t{}",
            row.nodes,
            row.append_s,
            row.delete_s,
            row.rebuild_s,
            row.speedup,
            row.answers_identical
        );
    }

    let record = IngestRecord {
        bench: "ingest".to_string(),
        seed: config.seed,
        frac: config.frac,
        queries: config.queries,
        cores: xsm_bench::cores(),
        rows,
    };
    let json = serde_json::to_string(&record).expect("ingest record serializes");
    std::fs::write(&config.out, &json).expect("write ingest benchmark JSON");
    eprintln!("wrote {}", config.out);
}
