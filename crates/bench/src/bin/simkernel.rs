//! Microbenchmark: string-path similarity measures vs. the precomputed-feature
//! kernels, plus bit-parallel Myers vs. the classic DP, the blocked multi-word
//! Myers kernel on >64-char names, and the vectorized ScanCount counter core
//! (for those two rows the "string" column is the scalar reference path).
//!
//! ```text
//! cargo run -p xsm-bench --bin simkernel --release \
//!     [seed=N] [elements=N] [queries=N] [pairs=N] [reps=N] [out=BENCH_simkernel.json]
//! ```
//!
//! The workload mirrors the serving engine: a seeded synthetic repository provides
//! the corpus names (features built once, inside the repository's `FeatureStore`),
//! a derived query mix provides the probe names (features built once per query name
//! inside the timed loop — exactly the engine's amortisation), and every measure
//! scores the same name pairs through both paths. Each path also folds its scores
//! into a checksum; the two checksums must agree **bit for bit**, so the reported
//! speedups can never come from divergent work.
//!
//! Results go to stdout as a table and to `out=` as machine-readable JSON — the
//! repository's benchmark trajectory accumulates these files (CI runs a smoke-sized
//! configuration on every push and uploads the artifact).

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use xsm_repo::{FeatureStore, GeneratorConfig, RepositoryGenerator};
use xsm_similarity::edit::{levenshtein, levenshtein_chars};
use xsm_similarity::features::{
    dice_features, fuzzy_features, jaccard_features, jaro_features, levenshtein_features,
    token_set_features, NameFeatures, SimScratch,
};
use xsm_similarity::fuzzy::compare_string_fuzzy;
use xsm_similarity::jaro::jaro;
use xsm_similarity::ngram::{ngram_similarity, qgram_jaccard};
use xsm_similarity::token::token_set_similarity;

struct BenchConfig {
    seed: u64,
    elements: usize,
    queries: usize,
    pairs: usize,
    reps: usize,
    out: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 2006,
            elements: 2_500,
            queries: 128,
            pairs: 50_000,
            reps: 3,
            out: "BENCH_simkernel.json".to_string(),
        }
    }
}

impl BenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "pairs" => self.pairs = value.parse().map_err(|e| format!("pairs: {e}"))?,
                "reps" => self.reps = value.parse().map_err(|e| format!("reps: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        self.queries = self.queries.max(1);
        self.pairs = self.pairs.max(1);
        self.reps = self.reps.max(1);
        Ok(self)
    }
}

/// One measure's comparison, as printed and as recorded in the JSON.
#[derive(Serialize)]
struct MeasureRow {
    measure: String,
    string_ns_per_op: f64,
    feature_ns_per_op: f64,
    string_mops: f64,
    feature_mops: f64,
    speedup: f64,
    checksums_match: bool,
}

/// The machine-readable record of one `simkernel` run.
#[derive(Serialize)]
struct SimkernelRecord {
    bench: String,
    cores: usize,
    seed: u64,
    elements: usize,
    query_names: usize,
    pairs: usize,
    reps: usize,
    rows: Vec<MeasureRow>,
}

/// The benchmark workload: query names probed against corpus names, grouped by
/// query so per-query work (lowercasing on the string path, feature building on
/// the feature path) amortises exactly as it does in the serving engine.
struct Workload {
    query_names: Vec<String>,
    corpus_names: Vec<String>,
    /// `groups[i]` = corpus-name indexes probed by query `i`.
    groups: Vec<Vec<usize>>,
    store: FeatureStore,
    corpus_features: Vec<NameFeatures>,
}

fn build_workload(config: &BenchConfig) -> Workload {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(config.elements),
    )
    .generate();
    let corpus_names: Vec<String> = repo.nodes().map(|(_, n)| n.name.clone()).collect();
    // Query mix: names the repository actually contains, every fourth perturbed
    // into a near-miss only fuzzy scoring can relate back (the workload generator's
    // convention), plus a camelCase composite to exercise tokenization.
    let query_names: Vec<String> = (0..config.queries)
        .map(|i| {
            let base = &corpus_names[(i * 7) % corpus_names.len()];
            match i % 4 {
                3 => format!("{base}x"),
                2 => format!("{base}Id"),
                _ => base.clone(),
            }
        })
        .collect();
    let per_query = config.pairs.div_ceil(query_names.len());
    let mut groups = Vec::with_capacity(query_names.len());
    let mut total = 0usize;
    for qi in 0..query_names.len() {
        let mut group = Vec::with_capacity(per_query);
        for k in 0..per_query {
            if total == config.pairs {
                break;
            }
            group.push((qi * 31 + k * 17) % corpus_names.len());
            total += 1;
        }
        groups.push(group);
    }
    let store = FeatureStore::build(&repo, 3);
    let corpus_features: Vec<NameFeatures> = store.iter().map(|(_, f)| f.clone()).collect();
    Workload {
        query_names,
        corpus_names,
        groups,
        store,
        corpus_features,
    }
}

/// Time `reps` passes over the whole workload; returns (total seconds, checksum).
/// `per_query` runs once per query name (its return value is the query-scoped
/// state, e.g. freshly built features); `per_pair` runs once per (state, query
/// index, corpus-name index) triple. Both phases are inside the timed region, so
/// per-query amortised work is charged exactly as the serving engine pays it.
fn time_pairs<S>(
    workload: &Workload,
    reps: usize,
    mut per_query: impl FnMut(usize) -> S,
    mut per_pair: impl FnMut(&S, usize, usize) -> f64,
) -> (f64, f64) {
    let start = Instant::now();
    let mut checksum = 0.0f64;
    for _ in 0..reps {
        for (qi, group) in workload.groups.iter().enumerate() {
            let state = per_query(qi);
            for &ci in group {
                checksum += black_box(per_pair(&state, qi, ci));
            }
        }
    }
    (start.elapsed().as_secs_f64(), checksum)
}

struct PathResult {
    seconds: f64,
    checksum: f64,
}

fn row(measure: &str, ops: usize, string_path: PathResult, feature_path: PathResult) -> MeasureRow {
    let string_ns = string_path.seconds * 1e9 / ops as f64;
    let feature_ns = feature_path.seconds * 1e9 / ops as f64;
    MeasureRow {
        measure: measure.to_string(),
        string_ns_per_op: string_ns,
        feature_ns_per_op: feature_ns,
        string_mops: ops as f64 / string_path.seconds / 1e6,
        feature_mops: ops as f64 / feature_path.seconds / 1e6,
        speedup: string_path.seconds / feature_path.seconds,
        checksums_match: string_path.checksum.to_bits() == feature_path.checksum.to_bits(),
    }
}

fn main() {
    let config = match BenchConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: simkernel [seed=N] [elements=N] [queries=N] [pairs=N] [reps=N] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "building workload ({} elements, {} query names, {} pairs, seed {})…",
        config.elements, config.queries, config.pairs, config.seed
    );
    let w = build_workload(&config);
    let ops: usize = w.groups.iter().map(|g| g.len()).sum::<usize>() * config.reps;
    eprintln!("scoring {ops} pairs per measure per path…");

    let mut scratch = SimScratch::default();
    let mut rows: Vec<MeasureRow> = Vec::new();

    // --- fuzzy (the paper's kernel: lowercase + Damerau-Levenshtein + normalize) ---
    {
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| compare_string_fuzzy(&w.query_names[qi], &w.corpus_names[ci]),
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| fuzzy_features(qf, &w.corpus_features[ci], &mut scratch),
        );
        rows.push(row(
            "fuzzy(damerau)",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- levenshtein: two-row DP over &str vs bit-parallel Myers over features ---
    // The string path gets pre-lowercased inputs so both paths compute the same
    // distances and the comparison isolates char collection + DP vs Myers.
    {
        let lower_queries: Vec<String> = w.query_names.iter().map(|n| n.to_lowercase()).collect();
        let lower_corpus: Vec<String> = w.corpus_names.iter().map(|n| n.to_lowercase()).collect();
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| levenshtein(&lower_queries[qi], &lower_corpus[ci]) as f64,
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| levenshtein_features(qf, &w.corpus_features[ci], &mut scratch) as f64,
        );
        rows.push(row(
            "levenshtein",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- myers vs dp: same precollected chars, algorithm difference only ---
    {
        let query_features: Vec<NameFeatures> = w
            .query_names
            .iter()
            .map(|n| w.store.query_features(n))
            .collect();
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| {
                levenshtein_chars(query_features[qi].chars(), w.corpus_features[ci].chars()) as f64
            },
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| {
                levenshtein_features(&query_features[qi], &w.corpus_features[ci], &mut scratch)
                    as f64
            },
        );
        rows.push(row(
            "myers-vs-dp",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- jaro ---
    {
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| jaro(&w.query_names[qi], &w.corpus_names[ci]),
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| jaro_features(qf, &w.corpus_features[ci], &mut scratch),
        );
        rows.push(row(
            "jaro",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- dice (trigram multiset, the `ngram_similarity` measure) ---
    {
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| ngram_similarity(&w.query_names[qi], &w.corpus_names[ci], 3),
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| dice_features(qf, &w.corpus_features[ci]),
        );
        rows.push(row(
            "dice(3-gram)",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- jaccard (trigram set, the index pre-filter measure) ---
    {
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| qgram_jaccard(&w.query_names[qi], &w.corpus_names[ci], 3),
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| jaccard_features(qf, &w.corpus_features[ci]),
        );
        rows.push(row(
            "jaccard(3-gram)",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- token-set ---
    {
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| token_set_similarity(&w.query_names[qi], &w.corpus_names[ci]),
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |qi| w.store.query_features(&w.query_names[qi]),
            |qf, _, ci| token_set_features(qf, &w.corpus_features[ci], &mut scratch),
        );
        rows.push(row(
            "token-set",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- blocked myers: >64-char names, multi-word bit-parallel vs scalar DP ---
    // Long names are elongated corpus names (2- and 3-block pattern widths).
    // Both paths run on the same precollected features, so the comparison
    // isolates the blocked Myers kernel against the two-row DP it replaces.
    {
        let elongate = |s: &str, min_chars: usize| -> String {
            let mut out = String::new();
            while out.chars().count() < min_chars {
                if !out.is_empty() {
                    out.push('_');
                }
                out.push_str(s);
            }
            out
        };
        let long_queries: Vec<NameFeatures> = w
            .query_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                w.store
                    .query_features(&elongate(n, if i % 3 == 0 { 140 } else { 80 }))
            })
            .collect();
        let long_corpus: Vec<NameFeatures> = w
            .corpus_names
            .iter()
            .map(|n| w.store.query_features(&elongate(n, 96)))
            .collect();
        let (s, cs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| levenshtein_chars(long_queries[qi].chars(), long_corpus[ci].chars()) as f64,
        );
        let (fs, fcs) = time_pairs(
            &w,
            config.reps,
            |_| (),
            |_, qi, ci| {
                levenshtein_features(&long_queries[qi], &long_corpus[ci], &mut scratch) as f64
            },
        );
        rows.push(row(
            "blocked-myers(>64)",
            ops,
            PathResult {
                seconds: s,
                checksum: cs,
            },
            PathResult {
                seconds: fs,
                checksum: fcs,
            },
        ));
    }

    // --- scancount: the dense u8 counter increment over posting runs ---
    // The index's count-filter inner loop on synthetic posting runs shaped
    // like arena segments: the vectorized core (prefetch + branchless touched
    // maintenance) vs the scalar reference it must match byte for byte. The
    // dense space is sized past L1/L2 — the high-volume regime where the
    // Auto policy actually picks ScanCount merges of this shape.
    {
        let n = 262_144usize;
        let mut state = config.seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut runs: Vec<Vec<u32>> = Vec::new();
        let mut postings = 0usize;
        // One "merge" visits about as many postings as the dense space has
        // slots — what a broad fuzzy query over a large shard looks like.
        while postings < n.max(config.pairs) {
            let len = 16 + (next() as usize % 1_008);
            let mut run: Vec<u32> = (0..len).map(|_| (next() % n as u64) as u32).collect();
            // Posting runs are strictly ascending (a gram lists a node at
            // most once), matching what the arena segments hand the kernel.
            run.sort_unstable();
            run.dedup();
            postings += run.len();
            runs.push(run);
        }
        let scan_reps = 4 * config.reps;
        let scan_ops = postings * scan_reps;
        type AccumulateFn = dyn Fn(&[u32], &mut [u8], &mut Vec<u32>);
        let time_scan = |accumulate: &AccumulateFn| {
            let mut counts = vec![0u8; n];
            let mut touched: Vec<u32> = Vec::with_capacity(n);
            let mut seconds = 0.0f64;
            let mut checksum = 0.0f64;
            for _ in 0..scan_reps {
                // Only the accumulation is timed; the checksum fold doubles
                // as the between-rep counter reset (the engine resets through
                // the touched list the same way) but is identical for both
                // paths and would otherwise drown the kernel difference.
                let start = Instant::now();
                for run in &runs {
                    accumulate(black_box(run), &mut counts, &mut touched);
                }
                seconds += start.elapsed().as_secs_f64();
                for &t in &touched {
                    checksum += counts[t as usize] as f64;
                    counts[t as usize] = 0;
                }
                touched.clear();
            }
            PathResult { seconds, checksum }
        };
        let scalar = time_scan(&|run, counts, touched| {
            xsm_similarity::simd::accumulate_run_scalar(run, counts, touched)
        });
        let vectorized = time_scan(&|run, counts, touched| {
            xsm_similarity::simd::accumulate_run(run, counts, touched)
        });
        rows.push(row("scancount(u8)", scan_ops, scalar, vectorized));
    }

    println!("measure          string ns/op  feature ns/op  speedup  checksums");
    for r in &rows {
        println!(
            "{:<16} {:>12.1} {:>14.1} {:>7.2}x  {}",
            r.measure,
            r.string_ns_per_op,
            r.feature_ns_per_op,
            r.speedup,
            if r.checksums_match {
                "match"
            } else {
                "DIVERGED"
            }
        );
    }
    let diverged: Vec<&str> = rows
        .iter()
        .filter(|r| !r.checksums_match)
        .map(|r| r.measure.as_str())
        .collect();
    assert!(
        diverged.is_empty(),
        "score checksums diverged between paths for: {diverged:?}"
    );

    let record = SimkernelRecord {
        bench: "simkernel".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        elements: config.elements,
        query_names: w.query_names.len(),
        pairs: config.pairs,
        reps: config.reps,
        rows,
    };
    let json = serde_json::to_string(&record).expect("simkernel record serializes");
    std::fs::write(&config.out, &json).expect("write simkernel benchmark JSON");
    eprintln!("wrote {}", config.out);
}
