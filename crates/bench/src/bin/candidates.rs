//! Microbenchmark: filter–verify candidate generation vs. the classic
//! merge-everything count filter, across corpus sizes.
//!
//! ```text
//! cargo run -p xsm-bench --bin candidates --release \
//!     [seed=N] [sizes=10000,100000,500000] [queries=N] [overlap=F] [floor=F] \
//!     [reps=N] [out=BENCH_candidates.json]
//! ```
//!
//! Three candidate-generation paths answer the same query mix per corpus size:
//!
//! * **baseline** — the pre-refactor lookup: merge every posting of the query's
//!   grams through a per-query `HashMap`, count-filter afterwards,
//! * **filter–verify (infinite window)** — length-bucketed postings with the
//!   ScanCount/MergeSkip auto merge, no length filter: must return candidate sets
//!   **byte-identical** to the baseline (order-sensitive checksums asserted),
//! * **filter–verify (length window)** — the serving configuration: the window is
//!   derived from `floor=` exactly as the engine derives it from its element
//!   similarity floor.
//!
//! Reported per path: ns/query and candidates examined per query (baseline:
//! distinct nodes hashed; ScanCount: counters touched; MergeSkip: frontier values
//! processed — skipped postings are never examined). A final section times the
//! small-tree k-means fast path on a clustering workload, asserting bit-identical
//! cluster sets while measuring the saving.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use xsm_core::{ClusteringConfig, KMeansClusterer};
use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use xsm_matcher::MatchingProblem;
use xsm_repo::{
    CandidateQuery, CandidateScratch, GeneratorConfig, LengthWindow, MergePolicy, NameIndex,
    RepositoryGenerator,
};
use xsm_schema::GlobalNodeId;

struct BenchConfig {
    seed: u64,
    sizes: Vec<usize>,
    queries: usize,
    overlap: f64,
    floor: f64,
    reps: usize,
    out: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 2006,
            sizes: vec![10_000, 100_000, 500_000],
            queries: 96,
            overlap: 0.5,
            floor: 0.5,
            reps: 3,
            out: "BENCH_candidates.json".to_string(),
        }
    }
}

impl BenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "sizes" => {
                    self.sizes = value
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("sizes: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "overlap" => self.overlap = value.parse().map_err(|e| format!("overlap: {e}"))?,
                "floor" => self.floor = value.parse().map_err(|e| format!("floor: {e}"))?,
                "reps" => self.reps = value.parse().map_err(|e| format!("reps: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        self.queries = self.queries.max(1);
        self.reps = self.reps.max(1);
        if self.sizes.is_empty() {
            return Err("sizes must name at least one corpus size".to_string());
        }
        Ok(self)
    }
}

/// One path's aggregate over the whole query mix at one corpus size.
#[derive(Serialize, Clone, Copy)]
struct PathRow {
    ns_per_query: f64,
    candidates_examined_per_query: f64,
    candidates_returned_per_query: f64,
    checksum: u64,
}

/// One corpus size's comparison.
#[derive(Serialize)]
struct SizeRow {
    nodes: usize,
    trees: usize,
    baseline: PathRow,
    filter_verify_infinite: PathRow,
    filter_verify_windowed: PathRow,
    /// baseline examined ÷ windowed examined — the acceptance headline.
    examined_ratio_windowed: f64,
    speedup_infinite: f64,
    speedup_windowed: f64,
    /// Infinite-window candidate sets byte-identical to the baseline.
    checksums_match: bool,
}

/// The small-tree k-means fast-path measurement.
#[derive(Serialize)]
struct KMeansRow {
    candidate_elements: usize,
    enabled_ns_per_run: f64,
    disabled_ns_per_run: f64,
    speedup: f64,
    identical: bool,
}

#[derive(Serialize)]
struct CandidatesRecord {
    bench: String,
    cores: usize,
    seed: u64,
    queries: usize,
    overlap: f64,
    floor: f64,
    reps: usize,
    rows: Vec<SizeRow>,
    kmeans_fast_path: KMeansRow,
}

/// Order-sensitive checksum over a candidate list: pins both membership and order.
fn fold_ids(checksum: &mut u64, ids: &[GlobalNodeId]) {
    for id in ids {
        let packed = ((id.tree.index() as u64) << 32) | id.node.index() as u64;
        *checksum = checksum
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(packed ^ 0x9e37_79b9);
    }
}

fn query_mix(names: &[String], count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            let base = &names[(i * 13) % names.len()];
            match i % 4 {
                3 => format!("{base}x"),
                2 => format!("{base}Id"),
                _ => base.clone(),
            }
        })
        .collect()
}

fn bench_size(config: &BenchConfig, nodes: usize) -> SizeRow {
    eprintln!("building {nodes}-node corpus (seed {})…", config.seed);
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(nodes),
    )
    .generate();
    let build_start = Instant::now();
    let index = NameIndex::build(&repo);
    eprintln!(
        "  index over {} nodes / {} trees built in {:.1}s",
        index.indexed_nodes(),
        repo.tree_count(),
        build_start.elapsed().as_secs_f64()
    );
    let corpus_names: Vec<String> = repo.nodes().map(|(_, n)| n.name.clone()).collect();
    let queries = query_mix(&corpus_names, config.queries);
    let total_queries = (queries.len() * config.reps) as f64;

    // --- baseline: HashMap merge over every posting ---
    let mut checksum = 0u64;
    let mut examined = 0usize;
    let mut returned = 0usize;
    let start = Instant::now();
    for _ in 0..config.reps {
        for query in &queries {
            let (ids, touched) =
                index.lookup_approximate_baseline_counted(black_box(query), config.overlap);
            examined += touched;
            returned += ids.len();
            fold_ids(&mut checksum, &ids);
        }
    }
    let baseline = PathRow {
        ns_per_query: start.elapsed().as_secs_f64() * 1e9 / total_queries,
        candidates_examined_per_query: examined as f64 / total_queries,
        candidates_returned_per_query: returned as f64 / total_queries,
        checksum,
    };

    // --- filter–verify, infinite window (must replay the baseline exactly) ---
    let mut scratch = CandidateScratch::default();
    let mut checksum = 0u64;
    let mut examined = 0usize;
    let mut returned = 0usize;
    let start = Instant::now();
    for _ in 0..config.reps {
        for query in &queries {
            let (ids, stats) = index.lookup_candidates_counted(
                &CandidateQuery::new(black_box(query), config.overlap),
                MergePolicy::Auto,
                &mut scratch,
            );
            examined += stats.candidates_examined;
            returned += ids.len();
            fold_ids(&mut checksum, &ids);
        }
    }
    let infinite = PathRow {
        ns_per_query: start.elapsed().as_secs_f64() * 1e9 / total_queries,
        candidates_examined_per_query: examined as f64 / total_queries,
        candidates_returned_per_query: returned as f64 / total_queries,
        checksum,
    };

    // --- filter–verify, length window from the similarity floor ---
    let window = LengthWindow::fuzzy_floor(config.floor);
    let mut checksum = 0u64;
    let mut examined = 0usize;
    let mut returned = 0usize;
    let start = Instant::now();
    for _ in 0..config.reps {
        for query in &queries {
            let (ids, stats) = index.lookup_candidates_counted(
                &CandidateQuery::new(black_box(query), config.overlap).with_length_window(window),
                MergePolicy::Auto,
                &mut scratch,
            );
            examined += stats.candidates_examined;
            returned += ids.len();
            fold_ids(&mut checksum, &ids);
        }
    }
    let windowed = PathRow {
        ns_per_query: start.elapsed().as_secs_f64() * 1e9 / total_queries,
        candidates_examined_per_query: examined as f64 / total_queries,
        candidates_returned_per_query: returned as f64 / total_queries,
        checksum,
    };

    SizeRow {
        nodes: index.indexed_nodes(),
        trees: repo.tree_count(),
        examined_ratio_windowed: baseline.candidates_examined_per_query
            / windowed.candidates_examined_per_query.max(1e-9),
        speedup_infinite: baseline.ns_per_query / infinite.ns_per_query,
        speedup_windowed: baseline.ns_per_query / windowed.ns_per_query,
        checksums_match: baseline.checksum == infinite.checksum,
        baseline,
        filter_verify_infinite: infinite,
        filter_verify_windowed: windowed,
    }
}

/// Time the clustering stage with the small-tree fast path enabled vs disabled on
/// the paper's personal schema over a small-tree-heavy forest, asserting identical
/// cluster sets.
fn bench_kmeans_fast_path(config: &BenchConfig) -> KMeansRow {
    let problem = MatchingProblem::paper_experiment();
    // A paper-scale forest: many trees, most of whose per-tree candidate scopes
    // are small enough for the fast path (tree-local clustering makes the scope
    // the tree's candidates, not the forest's).
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(5_000),
    )
    .generate();
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.5),
    );
    let enabled_clusterer = KMeansClusterer::new(ClusteringConfig::default());
    let disabled_clusterer =
        KMeansClusterer::new(ClusteringConfig::default().with_small_tree_fast_path(0));
    let reps = (config.reps * 4).max(4);

    let (enabled_set, _) = enabled_clusterer.cluster(&repo, &candidates);
    let (disabled_set, _) = disabled_clusterer.cluster(&repo, &candidates);
    let identical = enabled_set.clusters == disabled_set.clusters
        && enabled_set.unassigned == disabled_set.unassigned;

    // Interleave the two configurations so clock drift and cache warmth charge
    // both sides equally.
    let mut enabled_s = 0.0f64;
    let mut disabled_s = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(enabled_clusterer.cluster(&repo, &candidates));
        enabled_s += start.elapsed().as_secs_f64();
        let start = Instant::now();
        black_box(disabled_clusterer.cluster(&repo, &candidates));
        disabled_s += start.elapsed().as_secs_f64();
    }
    let enabled_ns = enabled_s * 1e9 / reps as f64;
    let disabled_ns = disabled_s * 1e9 / reps as f64;

    KMeansRow {
        candidate_elements: candidates.total_candidates(),
        enabled_ns_per_run: enabled_ns,
        disabled_ns_per_run: disabled_ns,
        speedup: disabled_ns / enabled_ns,
        identical,
    }
}

fn main() {
    let config = match BenchConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: candidates [seed=N] [sizes=A,B,C] [queries=N] [overlap=F] [floor=F] \
                 [reps=N] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    let rows: Vec<SizeRow> = config
        .sizes
        .iter()
        .map(|&n| bench_size(&config, n))
        .collect();

    println!(
        "{:>9}  {:>13} {:>13} {:>13}  {:>11} {:>9}  {:>9}",
        "nodes",
        "baseline ns/q",
        "infinite ns/q",
        "windowed ns/q",
        "examined b/w",
        "ratio",
        "checksums"
    );
    for r in &rows {
        println!(
            "{:>9}  {:>13.0} {:>13.0} {:>13.0}  {:>5.0}/{:>5.0} {:>8.2}x  {}",
            r.nodes,
            r.baseline.ns_per_query,
            r.filter_verify_infinite.ns_per_query,
            r.filter_verify_windowed.ns_per_query,
            r.baseline.candidates_examined_per_query,
            r.filter_verify_windowed.candidates_examined_per_query,
            r.examined_ratio_windowed,
            if r.checksums_match {
                "match"
            } else {
                "DIVERGED"
            }
        );
    }
    let diverged: Vec<usize> = rows
        .iter()
        .filter(|r| !r.checksums_match)
        .map(|r| r.nodes)
        .collect();
    assert!(
        diverged.is_empty(),
        "infinite-window candidate sets diverged from the baseline at sizes {diverged:?}"
    );

    let kmeans = bench_kmeans_fast_path(&config);
    println!(
        "kmeans small-tree fast path: {:.2}ms -> {:.2}ms per run ({:.2}x), clusters {}",
        kmeans.disabled_ns_per_run / 1e6,
        kmeans.enabled_ns_per_run / 1e6,
        kmeans.speedup,
        if kmeans.identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    assert!(
        kmeans.identical,
        "small-tree fast path changed the clustering"
    );

    let record = CandidatesRecord {
        bench: "candidates".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        queries: config.queries,
        overlap: config.overlap,
        floor: config.floor,
        reps: config.reps,
        rows,
        kmeans_fast_path: kmeans,
    };
    let json = serde_json::to_string(&record).expect("candidates record serializes");
    std::fs::write(&config.out, &json).expect("write candidates benchmark JSON");
    eprintln!("wrote {}", config.out);
}
