//! Regenerates Table 1 of the paper (cluster properties + mapping-generator
//! performance) plus the clustering-time paragraph of Sec. 5.
//!
//! ```text
//! cargo run -p xsm-bench --bin table1 --release [seed=N] [elements=N] [delta=X] [alpha=X] [minsim=X]
//! ```

use xsm_bench::experiments::{render_table1, run_table1};
use xsm_bench::{ExperimentConfig, Workload};

fn main() {
    let config = match ExperimentConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: table1 [seed=N] [elements=N] [delta=X] [alpha=X] [minsim=X]");
            std::process::exit(2);
        }
    };
    eprintln!(
        "building workload ({} elements, seed {})…",
        config.elements, config.seed
    );
    let workload = Workload::build(config);
    eprintln!("{}", workload.describe());
    eprintln!("running the four variants (small / medium / large / tree)…");
    let result = run_table1(&workload);
    println!("{}", render_table1(&result));
}
