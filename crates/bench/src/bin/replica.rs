//! What hedging buys: tail latency of a 2-replica [`ReplicaSet`] with one
//! persistently slow backend, hedged vs. unhedged.
//!
//! ```text
//! cargo run -p xsm-bench --bin replica --release \
//!     [seed=N] [elements=N] [queries=N] [workers=N] [slowms=N] [hedgems=N] \
//!     [topk=N] [minsim=X] [delta=X] [out=BENCH_replica.json]
//! ```
//!
//! The slow backend is a [`FaultyTransport`] with a persistent `slowms`
//! slowdown — healthy, correct, just late, the replica a breaker cannot help
//! with. Round-robin routing starts half the queries on it. Unhedged, those
//! queries eat the full delay and the p99 *is* the slowdown. Hedged, the set
//! launches a second attempt on the fast replica after `hedgems` and takes
//! whichever answers first — the paper-style p99 rescue, measured here
//! end-to-end. Every response in both modes is asserted byte-identical to a
//! single unreplicated engine (determinism is what makes the hedge's answer
//! authoritative), and the run is recorded as machine-readable JSON (`out=`)
//! for the CI bench trajectory.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, FaultyTransport, HedgeConfig, MatchEngine, MatchQuery, MatchResponse,
    MatchService, QueryStrategy, ReplicaSet, ReplicaSetConfig,
};

struct ReplicaBenchConfig {
    seed: u64,
    elements: usize,
    queries: usize,
    workers: usize,
    slow_ms: u64,
    hedge_ms: u64,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    out: String,
}

impl Default for ReplicaBenchConfig {
    fn default() -> Self {
        ReplicaBenchConfig {
            seed: 2006,
            elements: 2_500,
            queries: 120,
            workers: 1,
            slow_ms: 80,
            hedge_ms: 5,
            top_k: 5,
            min_similarity: 0.5,
            delta: 0.75,
            out: "BENCH_replica.json".to_string(),
        }
    }
}

impl ReplicaBenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "workers" => self.workers = value.parse().map_err(|e| format!("workers: {e}"))?,
                "slowms" => self.slow_ms = value.parse().map_err(|e| format!("slowms: {e}"))?,
                "hedgems" => self.hedge_ms = value.parse().map_err(|e| format!("hedgems: {e}"))?,
                "topk" => self.top_k = value.parse().map_err(|e| format!("topk: {e}"))?,
                "minsim" => {
                    self.min_similarity = value.parse().map_err(|e| format!("minsim: {e}"))?
                }
                "delta" => self.delta = value.parse().map_err(|e| format!("delta: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        Ok(self)
    }
}

/// One mode of the record: the same replica pair, hedging on or off.
#[derive(Serialize)]
struct ReplicaRow {
    mode: String,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    total_time_s: f64,
    qps: f64,
    hedged_queries: u64,
    hedge_wins: u64,
    failed_queries: u64,
}

/// The machine-readable record of one `replica` run.
#[derive(Serialize)]
struct ReplicaRecord {
    bench: String,
    cores: usize,
    /// The replica pair ran with more workers than the host has cores.
    underprovisioned: bool,
    seed: u64,
    elements: usize,
    trees: usize,
    queries: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    workers: usize,
    slow_ms: u64,
    hedge_ms: u64,
    rows: Vec<ReplicaRow>,
    /// Hedged p99 over unhedged p99 — below 1.0 is the tail latency the
    /// hedge clawed back from the slow replica.
    hedged_p99_vs_unhedged: f64,
}

fn query_batch(repo: &SchemaRepository, config: &ReplicaBenchConfig) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, config.queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = if i % 2 == 0 {
                QueryStrategy::Auto
            } else {
                QueryStrategy::Exhaustive
            };
            MatchQuery::new(personal)
                .with_top_k(config.top_k)
                .with_threshold(config.delta)
                .with_strategy(strategy)
        })
        .collect()
}

/// A 2-replica set over the same repository: backend 0 persistently slow by
/// `slow_ms`, backend 1 honest.
fn build_set(
    repo: &SchemaRepository,
    engine_config: &EngineConfig,
    config: &ReplicaBenchConfig,
    hedge: HedgeConfig,
) -> ReplicaSet {
    let slow = FaultyTransport::new(Box::new(MatchEngine::new(
        repo.clone(),
        engine_config.clone(),
    )));
    slow.set_slowdown(Some(Duration::from_millis(config.slow_ms)));
    let fast = MatchEngine::new(repo.clone(), engine_config.clone());
    let backends: Vec<Box<dyn MatchService>> = vec![Box::new(slow), Box::new(fast)];
    ReplicaSet::new(
        backends,
        ReplicaSetConfig::default()
            .with_hedge(hedge)
            .with_probe_interval(None),
    )
    .expect("bench replica set")
}

/// Serve the batch one query at a time (hedging is a per-query race, so the
/// per-query latency is the quantity under test), asserting every response
/// byte-identical to the reference. Returns sorted per-query latencies.
fn timed_identical_queries(
    label: &str,
    set: &ReplicaSet,
    batch: &[MatchQuery],
    reference: &[MatchResponse],
) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(batch.len());
    for (i, (query, expected)) in batch.iter().zip(reference).enumerate() {
        let start = Instant::now();
        let response = set
            .submit(query.clone())
            .and_then(|pending| pending.wait())
            .unwrap_or_else(|e| panic!("{label} query {i} failed: {e}"));
        latencies.push(start.elapsed());
        assert_eq!(
            expected.result_digest(),
            response.result_digest(),
            "query {i} diverged between the single engine and the {label} replica set"
        );
    }
    latencies.sort();
    latencies
}

fn quantile_ms(sorted: &[Duration], q: f64) -> f64 {
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index].as_secs_f64() * 1_000.0
}

fn main() {
    let config = match ReplicaBenchConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: replica [seed=N] [elements=N] [queries=N] [workers=N] \
                 [slowms=N] [hedgems=N] [topk=N] [minsim=X] [delta=X] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "building repository ({} elements, seed {})…",
        config.elements, config.seed
    );
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(config.elements),
    )
    .generate();
    eprintln!(
        "repository: {} elements over {} trees",
        repo.total_nodes(),
        repo.tree_count()
    );

    let engine_config = EngineConfig::builder()
        .workers(config.workers)
        .element(ElementMatchConfig::default().with_min_similarity(config.min_similarity))
        .build()
        .expect("bench engine config");
    let batch = query_batch(&repo, &config);

    // The unreplicated reference: both modes must reproduce these bytes.
    let single = MatchEngine::new(repo.clone(), engine_config.clone());
    let reference: Vec<MatchResponse> = single
        .submit_batch(batch.clone())
        .expect("the in-process worker pool cannot reject a batch");
    drop(single);

    eprintln!(
        "serving {} queries against 2 replicas, one {}ms slow, hedge after {}ms…",
        config.queries, config.slow_ms, config.hedge_ms
    );
    println!("mode\tp50 ms\tp99 ms\tq/s\thedges\twins");

    let modes: [(&str, HedgeConfig); 2] = [
        ("unhedged", HedgeConfig::disabled()),
        (
            "hedged",
            // A fixed hedge delay: the adaptive percentile trigger would
            // *also* work, but pinning the delay makes the two modes differ
            // in exactly one variable.
            HedgeConfig::default()
                .with_initial_delay(Duration::from_millis(config.hedge_ms))
                .with_min_observations(u64::MAX),
        ),
    ];

    let mut rows = Vec::new();
    let mut p99_by_mode = Vec::new();
    let start_all = Instant::now();
    for (mode, hedge) in modes {
        let set = Arc::new(build_set(&repo, &engine_config, &config, hedge));
        let start = Instant::now();
        let latencies = timed_identical_queries(mode, &set, &batch, &reference);
        let total_time_s = start.elapsed().as_secs_f64();
        let metrics = set
            .metrics_snapshot()
            .expect("replica set metrics are local");
        let p50_ms = quantile_ms(&latencies, 0.50);
        let p99_ms = quantile_ms(&latencies, 0.99);
        let qps = batch.len() as f64 / total_time_s;
        println!(
            "{mode}\t{p50_ms:.1}\t{p99_ms:.1}\t{qps:.1}\t{}\t{}",
            metrics.hedged_queries, metrics.hedge_wins
        );
        p99_by_mode.push(p99_ms);
        rows.push(ReplicaRow {
            mode: mode.to_string(),
            p50_ms,
            p99_ms,
            max_ms: quantile_ms(&latencies, 1.0),
            total_time_s,
            qps,
            hedged_queries: metrics.hedged_queries,
            hedge_wins: metrics.hedge_wins,
            failed_queries: metrics.failed_queries,
        });
    }

    let record = ReplicaRecord {
        bench: "replica".to_string(),
        cores: xsm_bench::cores(),
        underprovisioned: xsm_bench::underprovisioned(config.workers),
        seed: config.seed,
        elements: config.elements,
        trees: repo.tree_count(),
        queries: config.queries,
        top_k: config.top_k,
        min_similarity: config.min_similarity,
        delta: config.delta,
        workers: config.workers,
        slow_ms: config.slow_ms,
        hedge_ms: config.hedge_ms,
        hedged_p99_vs_unhedged: p99_by_mode[1] / p99_by_mode[0],
        rows,
    };
    let json = serde_json::to_string(&record).expect("replica record serializes");
    std::fs::write(&config.out, &json).expect("write replica benchmark JSON");
    eprintln!(
        "wrote {} (both modes byte-identical to the single engine, {:.1}s total)",
        config.out,
        start_all.elapsed().as_secs_f64()
    );
}
