//! Benchmark: cold process restart vs. snapshot-backed warm restart.
//!
//! ```text
//! cargo run -p xsm-bench --bin snapshot --release \
//!     [seed=N] [sizes=10000,100000,500000] [queries=N] [reps=N] \
//!     [generation=N] [out=BENCH_snapshot.json]
//! ```
//!
//! Both legs start from files on disk and end at the same place: an engine
//! that is fully warm — index built, features extracted, per-tree centroids
//! resolved — and ready to answer queries. What differs is the road:
//!
//! * **cold restart** — what a process start pays without a snapshot: read
//!   the persisted schema corpus (serde JSON, the portable interchange form),
//!   parse it, rebuild the repository and its labelings
//!   (`SchemaRepository::from_trees`), build the engine (`MatchEngine::new`:
//!   q-gram index construction, feature extraction, worker spawn), then
//!   compute the per-tree centroid table the routing layer needs,
//! * **warm restart** — `MatchEngine::from_snapshot` on the same corpus: one
//!   sequential read, checksum validation, in-place reconstruction; the
//!   centroid table comes out of the file,
//! * **snapshot write** — `MatchEngine::write_snapshot`, reported with the
//!   file size (amortized once per repository generation, off the serving
//!   path).
//!
//! Every warm engine answers the same seeded query mix as its cold twin and
//! the harness asserts the order-sensitive answer checksums are **identical**
//! — a snapshot that loads fast but answers differently is a failure, not a
//! result. The headline per size is `speedup = cold_restart / warm_restart`.
//!
//! Each restart leg runs in a **fresh child process** (the binary re-execs
//! itself): a restart benchmark that reuses one process's heap measures the
//! allocator's history, not the restart — on a single-core host the in-process
//! variant swung 5× from page-fault and writeback hangover of the previous
//! leg. The child times its own leg and reports on stdout, so process spawn
//! overhead is excluded and every leg starts from the clean slate a real
//! restart gets.

use std::hint::black_box;
use std::io::Read as _;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_schema::SchemaTree;
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{EngineConfig, MatchEngine, MatchQuery, QueryStrategy, StartupSource};

struct BenchConfig {
    seed: u64,
    sizes: Vec<usize>,
    queries: usize,
    reps: usize,
    generation: u64,
    out: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 2006,
            sizes: vec![10_000, 100_000, 500_000],
            queries: 24,
            reps: 3,
            generation: 1,
            out: "BENCH_snapshot.json".to_string(),
        }
    }
}

impl BenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "sizes" => {
                    self.sizes = value
                        .split(',')
                        .map(|s| s.parse().map_err(|e| format!("sizes: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "reps" => self.reps = value.parse().map_err(|e| format!("reps: {e}"))?,
                "generation" => {
                    self.generation = value.parse().map_err(|e| format!("generation: {e}"))?
                }
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        self.queries = self.queries.max(1);
        self.reps = self.reps.max(1);
        if self.sizes.is_empty() {
            return Err("sizes must name at least one corpus size".to_string());
        }
        Ok(self)
    }
}

/// One corpus size's restart comparison.
#[derive(Serialize)]
struct SizeRow {
    nodes: usize,
    trees: usize,
    /// Persisted schema corpus (serde JSON) size in bytes — the cold leg's input.
    schema_file_bytes: u64,
    /// Snapshot file size in bytes — the warm leg's input.
    snapshot_bytes: u64,
    /// Mean wall time of the full cold restart, seconds.
    cold_restart_s: f64,
    /// Cold breakdown: read + parse the persisted schemas.
    cold_parse_s: f64,
    /// Cold breakdown: repository + labelings + engine (index, features).
    cold_build_s: f64,
    /// Cold breakdown: per-tree centroid computation.
    cold_centroids_s: f64,
    /// Mean wall time of `MatchEngine::write_snapshot`, seconds.
    snapshot_write_s: f64,
    /// Mean wall time of the full warm restart (load + centroid table), seconds.
    warm_restart_s: f64,
    /// cold_restart_s / warm_restart_s — the acceptance headline.
    speedup: f64,
    /// Order-sensitive checksum over every response digest of the query mix.
    cold_checksum: u64,
    warm_checksum: u64,
    /// The two checksums agree: the warm engine answers identically.
    answers_identical: bool,
}

#[derive(Serialize)]
struct SnapshotRecord {
    bench: String,
    cores: usize,
    seed: u64,
    queries: usize,
    reps: usize,
    generation: u64,
    rows: Vec<SizeRow>,
}

/// What one restart leg (a child process) reports back on stdout.
#[derive(Serialize, Deserialize)]
struct LegReport {
    /// Cold breakdown: read + parse the persisted schemas (0 for warm legs).
    parse_s: f64,
    /// Cold breakdown: repository + labelings + engine (0 for warm legs).
    build_s: f64,
    /// Cold breakdown: per-tree centroid computation (0 for warm legs).
    centroids_s: f64,
    /// Full leg wall time: files on disk → fully warm engine.
    total_s: f64,
    /// Answer checksum over the seeded query mix (when requested, untimed).
    checksum: Option<u64>,
}

/// The seeded query mix every engine answers — derived from the repository,
/// so the cold and warm legs (separate processes) rebuild the same mix.
fn query_mix(repo: &SchemaRepository, queries: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            MatchQuery::new(personal)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(if i % 2 == 0 {
                    QueryStrategy::Auto
                } else {
                    QueryStrategy::IndexPruned
                })
        })
        .collect()
}

/// Fold every response's digest string into one order-sensitive FNV-1a
/// checksum: pins the strategy, counts, every score bit and every node id of
/// every answer in the mix.
fn answer_checksum(engine: &MatchEngine, queries: &[MatchQuery]) -> u64 {
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    for query in queries {
        for b in engine.answer_inline(query).result_digest().bytes() {
            checksum ^= b as u64;
            checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    checksum
}

/// Child-process entry: run one restart leg from a clean slate and print a
/// [`LegReport`] as JSON on stdout. Timing happens here, inside the child, so
/// the parent's spawn overhead never lands in the measurement.
fn run_leg(role: &str, path: &str, queries: usize) -> Result<LegReport, String> {
    let engine_config = EngineConfig::default().with_workers(1);
    let (report, engine) = match role {
        "cold" => {
            let start = Instant::now();
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let parsed: Vec<SchemaTree> =
                serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
            drop(json);
            let parse_s = start.elapsed().as_secs_f64();

            let t = Instant::now();
            let rebuilt = SchemaRepository::from_trees(parsed);
            let engine = MatchEngine::new(rebuilt, engine_config);
            let build_s = t.elapsed().as_secs_f64();

            let t = Instant::now();
            black_box(engine.tree_centroids());
            let centroids_s = t.elapsed().as_secs_f64();
            let total_s = start.elapsed().as_secs_f64();
            if engine.metrics().startup_source != StartupSource::ColdBuild {
                return Err("cold leg did not report ColdBuild".to_string());
            }
            (
                LegReport {
                    parse_s,
                    build_s,
                    centroids_s,
                    total_s,
                    checksum: None,
                },
                engine,
            )
        }
        "warm" => {
            let start = Instant::now();
            let engine =
                MatchEngine::from_snapshot(path, engine_config).map_err(|e| format!("{e}"))?;
            black_box(engine.tree_centroids());
            let total_s = start.elapsed().as_secs_f64();
            if engine.metrics().startup_source != StartupSource::SnapshotLoad {
                return Err("warm leg did not report SnapshotLoad".to_string());
            }
            (
                LegReport {
                    parse_s: 0.0,
                    build_s: 0.0,
                    centroids_s: 0.0,
                    total_s,
                    checksum: None,
                },
                engine,
            )
        }
        other => return Err(format!("unknown leg role '{other}'")),
    };
    let mut report = report;
    if queries > 0 {
        let mix = query_mix(&engine.repository(), queries);
        report.checksum = Some(answer_checksum(&engine, &mix));
    }
    Ok(report)
}

/// Spawn this binary as a one-leg child process and collect its report.
fn spawn_leg(role: &str, path: &std::path::Path, queries: usize) -> LegReport {
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("__leg")
        .arg(role)
        .arg(path)
        .arg(queries.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("restart leg spawns");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .expect("child stdout is piped")
        .read_to_string(&mut stdout)
        .expect("read leg report");
    let status = child.wait().expect("restart leg exits");
    assert!(status.success(), "{role} leg failed: {stdout}");
    serde_json::from_str(stdout.trim()).expect("leg report parses")
}

fn bench_size(config: &BenchConfig, nodes: usize) -> SizeRow {
    eprintln!("building {nodes}-node corpus (seed {})…", config.seed);
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(nodes),
    )
    .generate();
    let engine_config = EngineConfig::default().with_workers(1);
    let dir = std::env::temp_dir().join(format!("xsm-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    let snapshot_path = dir.join(format!("{nodes}.xsmsnap"));
    let schema_path = dir.join(format!("{nodes}.schemas.json"));

    // Setup, untimed: persist the schema corpus (the cold leg's input) and a
    // snapshot written by a fully built engine (the warm leg's input).
    let trees: Vec<SchemaTree> = repo.trees().map(|(_, tree)| tree.clone()).collect();
    std::fs::write(
        &schema_path,
        serde_json::to_string(&trees).expect("schema corpus serializes"),
    )
    .expect("schema corpus writes");
    drop(trees);
    let schema_file_bytes = std::fs::metadata(&schema_path)
        .expect("schema file exists")
        .len();

    // Snapshot write, off the serving path (amortized per generation) — timed
    // on the setup engine so neither restart leg shares its heap with it.
    let setup = MatchEngine::new(repo.clone(), engine_config.clone());
    let mut write_s = 0.0f64;
    let mut snapshot_bytes = 0u64;
    for _ in 0..config.reps {
        let start = Instant::now();
        snapshot_bytes = setup
            .write_snapshot(&snapshot_path, config.generation)
            .expect("snapshot writes");
        write_s += start.elapsed().as_secs_f64();
    }
    drop(setup);
    let (total_nodes, tree_count) = (repo.total_nodes(), repo.tree_count());
    drop(repo);

    // Drain writeback before the timed legs: on a small host the kernel
    // flushing hundreds of dirty megabytes competes with the child for the
    // CPU, and that cost belongs to setup, not to either restart.
    for path in [&schema_path, &snapshot_path] {
        std::fs::File::open(path)
            .and_then(|f| f.sync_all())
            .expect("setup files sync");
    }

    let mut parse_s = 0.0f64;
    let mut build_s = 0.0f64;
    let mut centroids_s = 0.0f64;
    let mut cold_s = 0.0f64;
    let mut warm_s = 0.0f64;
    let mut cold_checksum = 0u64;
    let mut warm_checksum = 0u64;
    for rep in 0..config.reps {
        // One fresh process per leg: rep 0 also answers the query mix
        // (untimed, after the clock stops) so the checksums can be compared.
        let queries = if rep == 0 { config.queries } else { 0 };
        let cold = spawn_leg("cold", &schema_path, queries);
        parse_s += cold.parse_s;
        build_s += cold.build_s;
        centroids_s += cold.centroids_s;
        cold_s += cold.total_s;
        let warm = spawn_leg("warm", &snapshot_path, queries);
        warm_s += warm.total_s;
        if rep == 0 {
            cold_checksum = cold.checksum.expect("cold leg answered the mix");
            warm_checksum = warm.checksum.expect("warm leg answered the mix");
        }
    }
    let _ = std::fs::remove_file(&snapshot_path);
    let _ = std::fs::remove_file(&schema_path);
    let reps = config.reps as f64;
    let row = SizeRow {
        nodes: total_nodes,
        trees: tree_count,
        schema_file_bytes,
        snapshot_bytes,
        cold_restart_s: cold_s / reps,
        cold_parse_s: parse_s / reps,
        cold_build_s: build_s / reps,
        cold_centroids_s: centroids_s / reps,
        snapshot_write_s: write_s / reps,
        warm_restart_s: warm_s / reps,
        speedup: cold_s / warm_s.max(1e-12),
        cold_checksum,
        warm_checksum,
        answers_identical: cold_checksum == warm_checksum,
    };
    eprintln!(
        "  cold {:.3}s (parse {:.3} + build {:.3} + centroids {:.3})  write {:.3}s ({:.1} MiB)  \
         warm {:.3}s  speedup {:.1}x  answers {}",
        row.cold_restart_s,
        row.cold_parse_s,
        row.cold_build_s,
        row.cold_centroids_s,
        row.snapshot_write_s,
        row.snapshot_bytes as f64 / (1024.0 * 1024.0),
        row.warm_restart_s,
        row.speedup,
        if row.answers_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    row
}

fn main() {
    // Child mode: `snapshot __leg <cold|warm> <path> <queries>` runs one
    // restart leg in this (fresh) process and reports on stdout.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("__leg") {
        if args.len() != 4 {
            eprintln!("usage: snapshot __leg <cold|warm> <path> <queries>");
            std::process::exit(2);
        }
        let queries: usize = args[3].parse().unwrap_or_else(|e| {
            eprintln!("queries: {e}");
            std::process::exit(2);
        });
        match run_leg(&args[1], &args[2], queries) {
            Ok(report) => {
                println!(
                    "{}",
                    serde_json::to_string(&report).expect("leg report serializes")
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let config = match BenchConfig::default().apply_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: snapshot [seed=N] [sizes=A,B,C] [queries=N] [reps=N] [generation=N] \
                 [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    let rows: Vec<SizeRow> = config
        .sizes
        .iter()
        .map(|&n| bench_size(&config, n))
        .collect();

    println!(
        "{:>9}  {:>11} {:>11} {:>11}  {:>10}  {:>8}  {:>9}",
        "nodes", "cold s", "write s", "warm s", "bytes", "speedup", "answers"
    );
    for r in &rows {
        println!(
            "{:>9}  {:>11.3} {:>11.3} {:>11.3}  {:>10}  {:>7.1}x  {}",
            r.nodes,
            r.cold_restart_s,
            r.snapshot_write_s,
            r.warm_restart_s,
            r.snapshot_bytes,
            r.speedup,
            if r.answers_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
    }
    let diverged: Vec<usize> = rows
        .iter()
        .filter(|r| !r.answers_identical)
        .map(|r| r.nodes)
        .collect();
    assert!(
        diverged.is_empty(),
        "snapshot-loaded engines answered differently at sizes {diverged:?}"
    );

    let record = SnapshotRecord {
        bench: "snapshot".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        queries: config.queries,
        reps: config.reps,
        generation: config.generation,
        rows,
    };
    let json = serde_json::to_string(&record).expect("snapshot record serializes");
    std::fs::write(&config.out, &json).expect("write snapshot benchmark JSON");
    eprintln!("wrote {}", config.out);
}
