//! Serving throughput: queries/sec of the [`MatchEngine`] with 1 worker vs. N
//! workers on a seeded workload, plus a warm (result-cached) pass.
//!
//! ```text
//! cargo run -p xsm-bench --bin serve --release \
//!     [seed=N] [elements=N] [queries=N] [workers=N] [topk=N] [minsim=X] [delta=X] \
//!     [out=BENCH_serve.json]
//! ```
//!
//! The scaled batch is answered by a 1-worker engine (the sequential baseline) and a
//! multi-worker engine over the *same* repository; the binary asserts the responses
//! are content-identical before reporting the speedup, so the numbers can never come
//! from divergent work. Besides the human-readable table, the run is recorded as
//! machine-readable JSON (`out=`) so CI can accumulate a benchmark trajectory.

use std::time::Instant;

use serde::Serialize;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, EngineMetrics, MatchEngine, MatchQuery, MatchResponse, QueryStrategy,
};

struct ServeConfig {
    seed: u64,
    elements: usize,
    queries: usize,
    workers: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    out: String,
}

/// One row of the throughput table, as written to the JSON record.
#[derive(Serialize)]
struct ThroughputRow {
    workers: usize,
    /// This row ran with more workers than the host has cores — its scaling
    /// numbers measure oversubscription, not the engine.
    underprovisioned: bool,
    warm: bool,
    time_s: f64,
    queries_per_sec: f64,
    speedup_vs_sequential: f64,
}

/// The machine-readable record of one `serve` run.
#[derive(Serialize)]
struct ServeRecord {
    bench: String,
    cores: usize,
    seed: u64,
    elements: usize,
    trees: usize,
    queries: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    build_seconds: f64,
    rows: Vec<ThroughputRow>,
    metrics: EngineMetrics,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 2006,
            elements: 2_500,
            queries: 200,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            top_k: 5,
            min_similarity: 0.5,
            delta: 0.75,
            out: "BENCH_serve.json".to_string(),
        }
    }
}

impl ServeConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "workers" => self.workers = value.parse().map_err(|e| format!("workers: {e}"))?,
                "topk" => self.top_k = value.parse().map_err(|e| format!("topk: {e}"))?,
                "minsim" => {
                    self.min_similarity = value.parse().map_err(|e| format!("minsim: {e}"))?
                }
                "delta" => self.delta = value.parse().map_err(|e| format!("delta: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        Ok(self)
    }
}

/// Deterministic query mix over the shared seeded workload (the same generator the
/// determinism test uses), alternating planner-decided and exhaustive strategies.
fn query_batch(repo: &SchemaRepository, config: &ServeConfig) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, config.queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = if i % 2 == 0 {
                QueryStrategy::Auto
            } else {
                QueryStrategy::Exhaustive
            };
            MatchQuery::new(personal)
                .with_top_k(config.top_k)
                .with_threshold(config.delta)
                .with_strategy(strategy)
        })
        .collect()
}

fn run_batch(engine: &MatchEngine, batch: &[MatchQuery]) -> (Vec<MatchResponse>, f64, f64) {
    let start = Instant::now();
    let responses = engine
        .submit_batch(batch.to_vec())
        .expect("the in-process worker pool cannot reject a batch");
    let elapsed = start.elapsed().as_secs_f64();
    (responses, elapsed, batch.len() as f64 / elapsed)
}

fn main() {
    let config = match ServeConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve [seed=N] [elements=N] [queries=N] [workers=N] [topk=N] \
                 [minsim=X] [delta=X] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "building repository ({} elements, seed {})…",
        config.elements, config.seed
    );
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(config.elements),
    )
    .generate();
    eprintln!(
        "repository: {} elements over {} trees",
        repo.total_nodes(),
        repo.tree_count()
    );

    let engine_config = EngineConfig::default()
        .with_element_config(
            ElementMatchConfig::default().with_min_similarity(config.min_similarity),
        )
        .with_result_cache_capacity(config.queries.max(1));
    let batch = query_batch(&repo, &config);
    eprintln!(
        "serving {} queries (top-{}, δ={}) with 1 vs {} workers…",
        config.queries, config.top_k, config.delta, config.workers
    );

    let build_start = Instant::now();
    let sequential = MatchEngine::new(repo.clone(), engine_config.clone().with_workers(1));
    let build_time = build_start.elapsed();
    let (base_responses, base_time, base_qps) = run_batch(&sequential, &batch);

    let concurrent = MatchEngine::new(repo, engine_config.clone().with_workers(config.workers));
    let (conc_responses, conc_time, conc_qps) = run_batch(&concurrent, &batch);

    // Guard the numbers: both engines must have produced identical content.
    for (i, (a, b)) in base_responses.iter().zip(&conc_responses).enumerate() {
        assert_eq!(
            a.result_digest(),
            b.result_digest(),
            "query {i} diverged between 1 and {} workers",
            config.workers
        );
    }

    // Warm pass: every fingerprint is now cached.
    let (_, warm_time, warm_qps) = run_batch(&concurrent, &batch);

    println!("engine construction (index + caches): {build_time:?}");
    println!("\nworkers\ttime_s\tqueries/sec\tspeedup");
    println!("1\t{base_time:.3}\t{base_qps:.1}\t1.00");
    println!(
        "{}\t{conc_time:.3}\t{conc_qps:.1}\t{:.2}",
        config.workers,
        conc_qps / base_qps
    );
    println!(
        "{} (warm)\t{warm_time:.3}\t{warm_qps:.1}\t{:.2}",
        config.workers,
        warm_qps / base_qps
    );

    let metrics = concurrent.metrics();
    println!("\nmetrics of the {}-worker engine:", config.workers);
    println!("  queries served        : {}", metrics.queries_served);
    println!(
        "  result-cache hit rate : {:.1}% ({} hits)",
        100.0 * metrics.result_cache_hit_rate,
        metrics.result_cache_hits
    );
    println!("  coalesced queries     : {}", metrics.coalesced_queries);
    println!(
        "  strategies            : {} index-pruned, {} exhaustive",
        metrics.index_pruned_queries, metrics.exhaustive_queries
    );
    println!(
        "  serving latency       : p50 ≤ {} µs, p99 ≤ {} µs",
        metrics.p50_latency_us, metrics.p99_latency_us
    );

    let record = ServeRecord {
        bench: "serve".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        elements: config.elements,
        trees: concurrent.repository().tree_count(),
        queries: config.queries,
        top_k: config.top_k,
        min_similarity: config.min_similarity,
        delta: config.delta,
        build_seconds: build_time.as_secs_f64(),
        rows: vec![
            ThroughputRow {
                workers: 1,
                underprovisioned: xsm_bench::underprovisioned(1),
                warm: false,
                time_s: base_time,
                queries_per_sec: base_qps,
                speedup_vs_sequential: 1.0,
            },
            ThroughputRow {
                workers: config.workers,
                underprovisioned: xsm_bench::underprovisioned(config.workers),
                warm: false,
                time_s: conc_time,
                queries_per_sec: conc_qps,
                speedup_vs_sequential: conc_qps / base_qps,
            },
            ThroughputRow {
                workers: config.workers,
                underprovisioned: xsm_bench::underprovisioned(config.workers),
                warm: true,
                time_s: warm_time,
                queries_per_sec: warm_qps,
                speedup_vs_sequential: warm_qps / base_qps,
            },
        ],
        metrics,
    };
    let json = serde_json::to_string(&record).expect("serve record serializes");
    std::fs::write(&config.out, &json).expect("write serve benchmark JSON");
    eprintln!("wrote {}", config.out);
}
