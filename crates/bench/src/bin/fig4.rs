//! Regenerates Figure 4 of the paper: the cluster-size distribution produced by the
//! three reclustering strategies (none / join / join & remove).
//!
//! ```text
//! cargo run -p xsm-bench --bin fig4 --release [seed=N] [elements=N] [minsim=X]
//! ```

use xsm_bench::experiments::{render_fig4, run_fig4};
use xsm_bench::{ExperimentConfig, Workload};

fn main() {
    let config = match ExperimentConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fig4 [seed=N] [elements=N] [delta=X] [alpha=X] [minsim=X]");
            std::process::exit(2);
        }
    };
    eprintln!(
        "building workload ({} elements, seed {})…",
        config.elements, config.seed
    );
    let workload = Workload::build(config);
    eprintln!("{}", workload.describe());
    let result = run_fig4(&workload);
    println!("{}", render_fig4(&result));
}
