//! Regenerates Figure 6 of the paper: the percentage of preserved mappings as a
//! function of the objective threshold δ for three objective functions
//! (α ∈ {0.25, 0.50, 0.75}), all using the "medium clusters" variant.
//!
//! ```text
//! cargo run -p xsm-bench --bin fig6 --release [seed=N] [elements=N] [delta=X] [minsim=X]
//! ```

use xsm_bench::experiments::{render_preservation, run_fig6};
use xsm_bench::{ExperimentConfig, Workload};

fn main() {
    let config = match ExperimentConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fig6 [seed=N] [elements=N] [delta=X] [minsim=X]");
            std::process::exit(2);
        }
    };
    eprintln!(
        "building workload ({} elements, seed {})…",
        config.elements, config.seed
    );
    let workload = Workload::build(config);
    eprintln!("{}", workload.describe());
    let result = run_fig6(&workload);
    println!(
        "{}",
        render_preservation(
            &result,
            "Figure 6: preserved mappings per objective function (alpha)"
        )
    );
}
