//! Networked serving overhead: queries/sec of an in-process [`ShardedEngine`]
//! vs. the same fleet served over loopback TCP through [`RemoteEngine`]
//! clients, across 1/2/4 shards.
//!
//! ```text
//! cargo run -p xsm-bench --bin net --release \
//!     [seed=N] [elements=N] [queries=N] [workers=N] [routerworkers=N] \
//!     [topk=N] [minsim=X] [delta=X] [out=BENCH_net.json]
//! ```
//!
//! Before any number is reported, every response — in-process and networked —
//! is asserted content-identical to the single-engine answer over the whole
//! repository, so throughput can never come from divergent work. What this
//! measures on loopback is the full protocol cost: serde framing both ways,
//! the handshake-pooled socket hop, and the router's scatter threads. The run
//! is recorded as machine-readable JSON (`out=`) for the CI bench trajectory.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{
    GeneratorConfig, RepositoryGenerator, RepositoryPartition, SchemaRepository, ShardPlacement,
};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchResponse, MatchService, QueryStrategy,
    RemoteEngine, RemoteEngineConfig, ShardServer, ShardedEngine, ShardedEngineConfig,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct NetBenchConfig {
    seed: u64,
    elements: usize,
    queries: usize,
    workers: usize,
    router_workers: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    out: String,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        NetBenchConfig {
            seed: 2006,
            elements: 2_500,
            queries: 200,
            workers: 1,
            router_workers: 4,
            top_k: 5,
            min_similarity: 0.5,
            delta: 0.75,
            out: "BENCH_net.json".to_string(),
        }
    }
}

impl NetBenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "workers" => self.workers = value.parse().map_err(|e| format!("workers: {e}"))?,
                "routerworkers" => {
                    self.router_workers =
                        value.parse().map_err(|e| format!("routerworkers: {e}"))?
                }
                "topk" => self.top_k = value.parse().map_err(|e| format!("topk: {e}"))?,
                "minsim" => {
                    self.min_similarity = value.parse().map_err(|e| format!("minsim: {e}"))?
                }
                "delta" => self.delta = value.parse().map_err(|e| format!("delta: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        Ok(self)
    }
}

/// One row of the record: a shard count with both transports timed.
#[derive(Serialize)]
struct NetRow {
    shards: usize,
    /// Total worker threads this row demanded (shards x workers + router)
    /// exceeded the host cores — scaling numbers measure oversubscription.
    underprovisioned: bool,
    inprocess_time_s: f64,
    inprocess_qps: f64,
    tcp_time_s: f64,
    tcp_qps: f64,
    /// TCP throughput as a fraction of in-process throughput — the protocol
    /// tax. 1.0 means the wire is free; lower is the serde + socket cost.
    tcp_vs_inprocess: f64,
}

/// The machine-readable record of one `net` run.
#[derive(Serialize)]
struct NetRecord {
    bench: String,
    cores: usize,
    seed: u64,
    elements: usize,
    trees: usize,
    queries: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    workers_per_shard: usize,
    router_workers: usize,
    single_engine_qps: f64,
    rows: Vec<NetRow>,
}

fn query_batch(repo: &SchemaRepository, config: &NetBenchConfig) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, config.queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = if i % 2 == 0 {
                QueryStrategy::Auto
            } else {
                QueryStrategy::Exhaustive
            };
            MatchQuery::new(personal)
                .with_top_k(config.top_k)
                .with_threshold(config.delta)
                .with_strategy(strategy)
        })
        .collect()
}

/// Serve `batch`, assert every response content-identical to `reference`, and
/// hand back the elapsed seconds.
fn timed_identical_batch(
    label: &str,
    shards: usize,
    fleet: &ShardedEngine,
    batch: &[MatchQuery],
    reference: &[MatchResponse],
) -> f64 {
    let start = Instant::now();
    let responses = fleet
        .submit_batch(batch.to_vec())
        .unwrap_or_else(|e| panic!("{label} fleet with {shards} shards failed: {e}"));
    let elapsed = start.elapsed().as_secs_f64();
    for (i, (a, b)) in reference.iter().zip(&responses).enumerate() {
        assert!(
            !b.incomplete,
            "query {i} degraded on the {label} fleet with {shards} shards"
        );
        assert_eq!(
            a.result_digest(),
            b.result_digest(),
            "query {i} diverged between the single engine and the {label} fleet \
             with {shards} shards"
        );
    }
    elapsed
}

fn main() {
    let config = match NetBenchConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: net [seed=N] [elements=N] [queries=N] [workers=N] \
                 [routerworkers=N] [topk=N] [minsim=X] [delta=X] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "building repository ({} elements, seed {})…",
        config.elements, config.seed
    );
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(config.elements),
    )
    .generate();
    eprintln!(
        "repository: {} elements over {} trees",
        repo.total_nodes(),
        repo.tree_count()
    );

    let engine_config = EngineConfig::builder()
        .workers(config.workers)
        .element(ElementMatchConfig::default().with_min_similarity(config.min_similarity))
        .result_cache_capacity(config.queries.max(1))
        .build()
        .expect("bench engine config");
    let batch = query_batch(&repo, &config);
    eprintln!(
        "serving {} queries (top-{}, δ={}) in-process vs loopback TCP, {:?} shards…",
        config.queries, config.top_k, config.delta, SHARD_COUNTS
    );

    // The unsharded reference: both transports must reproduce these bytes.
    let single = MatchEngine::new(repo.clone(), engine_config.clone());
    let start = Instant::now();
    let reference: Vec<MatchResponse> = single
        .submit_batch(batch.clone())
        .expect("the in-process worker pool cannot reject a batch");
    let single_qps = batch.len() as f64 / start.elapsed().as_secs_f64();
    println!("single engine\t{single_qps:.1} q/s");
    println!("\nshards\tinproc q/s\ttcp q/s\ttcp/inproc");

    let client_config = RemoteEngineConfig::default()
        .with_request_deadline(Duration::from_secs(300))
        .with_io_timeout(Duration::from_secs(30));
    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        let router_config = |engine: EngineConfig| {
            ShardedEngineConfig::builder()
                .shards(shards)
                .placement(ShardPlacement::Contiguous)
                .router_workers(config.router_workers)
                .router_result_cache_capacity(config.queries.max(1))
                .engine(engine)
                .build()
                .expect("bench router config")
        };

        let inprocess = ShardedEngine::new(repo.clone(), router_config(engine_config.clone()));
        let inprocess_time_s =
            timed_identical_batch("in-process", shards, &inprocess, &batch, &reference);
        drop(inprocess);

        // The same partition served over loopback TCP: one server per shard,
        // one handshaked client per server, the identical router on top.
        let partition = RepositoryPartition::build(&repo, shards, ShardPlacement::Contiguous);
        let (parts, tree_maps) = partition.into_parts();
        let mut servers = Vec::new();
        let mut services: Vec<Box<dyn MatchService>> = Vec::new();
        for part in parts {
            let backend: Arc<dyn MatchService> =
                Arc::new(MatchEngine::new(part, engine_config.clone()));
            let server = ShardServer::bind("127.0.0.1:0", backend).expect("bind loopback");
            let client =
                RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
                    .expect("handshake with own server");
            services.push(Box::new(client));
            servers.push(server);
        }
        let tcp =
            ShardedEngine::from_services(services, tree_maps, router_config(engine_config.clone()))
                .expect("assemble the TCP fleet");
        let tcp_time_s = timed_identical_batch("TCP", shards, &tcp, &batch, &reference);
        drop(tcp);
        drop(servers);

        let inprocess_qps = batch.len() as f64 / inprocess_time_s;
        let tcp_qps = batch.len() as f64 / tcp_time_s;
        println!(
            "{shards}\t{inprocess_qps:.1}\t{tcp_qps:.1}\t{:.2}",
            tcp_qps / inprocess_qps
        );
        rows.push(NetRow {
            shards,
            underprovisioned: xsm_bench::underprovisioned(
                shards * config.workers + config.router_workers,
            ),
            inprocess_time_s,
            inprocess_qps,
            tcp_time_s,
            tcp_qps,
            tcp_vs_inprocess: tcp_qps / inprocess_qps,
        });
    }

    let record = NetRecord {
        bench: "net".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        elements: config.elements,
        trees: repo.tree_count(),
        queries: config.queries,
        top_k: config.top_k,
        min_similarity: config.min_similarity,
        delta: config.delta,
        workers_per_shard: config.workers,
        router_workers: config.router_workers,
        single_engine_qps: single_qps,
        rows,
    };
    let json = serde_json::to_string(&record).expect("net record serializes");
    std::fs::write(&config.out, &json).expect("write net benchmark JSON");
    eprintln!(
        "wrote {} (all {} fleet sizes byte-identical on both transports)",
        config.out,
        SHARD_COUNTS.len()
    );
}
