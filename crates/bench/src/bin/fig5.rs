//! Regenerates Figure 5 of the paper: the percentage of preserved mappings as a
//! function of the objective threshold δ, for the small / medium / large / tree
//! clustering variants.
//!
//! ```text
//! cargo run -p xsm-bench --bin fig5 --release [seed=N] [elements=N] [delta=X] [alpha=X] [minsim=X]
//! ```

use xsm_bench::experiments::{render_preservation, run_fig5};
use xsm_bench::{ExperimentConfig, Workload};

fn main() {
    let config = match ExperimentConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fig5 [seed=N] [elements=N] [delta=X] [alpha=X] [minsim=X]");
            std::process::exit(2);
        }
    };
    eprintln!(
        "building workload ({} elements, seed {})…",
        config.elements, config.seed
    );
    let workload = Workload::build(config);
    eprintln!("{}", workload.describe());
    let result = run_fig5(&workload);
    println!(
        "{}",
        render_preservation(
            &result,
            "Figure 5: preserved mappings per clustering variant"
        )
    );
}
