//! Sharded serving throughput: queries/sec of a single [`MatchEngine`] vs. a
//! [`ShardedEngine`] partitioning the same repository across 1/2/4 shards.
//!
//! ```text
//! cargo run -p xsm-bench --bin shard --release \
//!     [seed=N] [elements=N] [queries=N] [workers=N] [routerworkers=N] \
//!     [topk=N] [minsim=X] [delta=X] [out=BENCH_shard.json]
//! ```
//!
//! Before any number is reported, every sharded response is asserted
//! content-identical to the single-engine response — the merge-equivalence
//! contract of `xsm_service::shard` — so throughput can never come from divergent
//! work. The run is recorded as machine-readable JSON (`out=`) for the CI bench
//! trajectory. NB: on a single-core container the shard fleets time-slice one
//! core, so the interesting signal there is equivalence plus router overhead, not
//! parallel speedup.

use std::time::Instant;

use serde::Serialize;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository, ShardPlacement};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchResponse, QueryStrategy, ShardedEngine,
    ShardedEngineConfig, ShardedMetrics,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct ShardBenchConfig {
    seed: u64,
    elements: usize,
    queries: usize,
    workers: usize,
    router_workers: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    out: String,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            seed: 2006,
            elements: 2_500,
            queries: 200,
            workers: 1,
            router_workers: 4,
            top_k: 5,
            min_similarity: 0.5,
            delta: 0.75,
            out: "BENCH_shard.json".to_string(),
        }
    }
}

impl ShardBenchConfig {
    fn apply_args<I: IntoIterator<Item = String>>(mut self, args: I) -> Result<Self, String> {
        for arg in args {
            let Some((key, value)) = arg.split_once('=') else {
                return Err(format!("expected key=value, got '{arg}'"));
            };
            match key {
                "seed" => self.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "elements" => {
                    self.elements = value.parse().map_err(|e| format!("elements: {e}"))?
                }
                "queries" => self.queries = value.parse().map_err(|e| format!("queries: {e}"))?,
                "workers" => self.workers = value.parse().map_err(|e| format!("workers: {e}"))?,
                "routerworkers" => {
                    self.router_workers =
                        value.parse().map_err(|e| format!("routerworkers: {e}"))?
                }
                "topk" => self.top_k = value.parse().map_err(|e| format!("topk: {e}"))?,
                "minsim" => {
                    self.min_similarity = value.parse().map_err(|e| format!("minsim: {e}"))?
                }
                "delta" => self.delta = value.parse().map_err(|e| format!("delta: {e}"))?,
                "out" => self.out = value.to_string(),
                other => return Err(format!("unknown parameter '{other}'")),
            }
        }
        Ok(self)
    }
}

/// One throughput row of the record: a shard count with its build and serve times.
#[derive(Serialize)]
struct ShardRow {
    shards: usize,
    /// Total worker threads this row demanded (shards x workers + router)
    /// exceeded the host cores — scaling numbers measure oversubscription.
    underprovisioned: bool,
    build_seconds: f64,
    time_s: f64,
    queries_per_sec: f64,
    speedup_vs_single_engine: f64,
    router_coalesced: u64,
    per_shard_served: Vec<u64>,
}

/// The machine-readable record of one `shard` run.
#[derive(Serialize)]
struct ShardRecord {
    bench: String,
    cores: usize,
    seed: u64,
    elements: usize,
    trees: usize,
    queries: usize,
    top_k: usize,
    min_similarity: f64,
    delta: f64,
    workers_per_shard: usize,
    router_workers: usize,
    single_engine_time_s: f64,
    single_engine_qps: f64,
    rows: Vec<ShardRow>,
}

fn query_batch(repo: &SchemaRepository, config: &ShardBenchConfig) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, config.queries)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = if i % 2 == 0 {
                QueryStrategy::Auto
            } else {
                QueryStrategy::Exhaustive
            };
            MatchQuery::new(personal)
                .with_top_k(config.top_k)
                .with_threshold(config.delta)
                .with_strategy(strategy)
        })
        .collect()
}

fn main() {
    let config = match ShardBenchConfig::default().apply_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: shard [seed=N] [elements=N] [queries=N] [workers=N] \
                 [routerworkers=N] [topk=N] [minsim=X] [delta=X] [out=PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "building repository ({} elements, seed {})…",
        config.elements, config.seed
    );
    let repo = RepositoryGenerator::new(
        GeneratorConfig::paper_default()
            .with_seed(config.seed)
            .with_target_elements(config.elements),
    )
    .generate();
    eprintln!(
        "repository: {} elements over {} trees",
        repo.total_nodes(),
        repo.tree_count()
    );

    let engine_config = EngineConfig::default()
        .with_workers(config.workers)
        .with_element_config(
            ElementMatchConfig::default().with_min_similarity(config.min_similarity),
        )
        .with_result_cache_capacity(config.queries.max(1));
    let batch = query_batch(&repo, &config);
    eprintln!(
        "serving {} queries (top-{}, δ={}) single-engine vs {:?} shards…",
        config.queries, config.top_k, config.delta, SHARD_COUNTS
    );

    // The unsharded reference: every sharded fleet must reproduce these bytes.
    let single = MatchEngine::new(repo.clone(), engine_config.clone());
    let start = Instant::now();
    let reference: Vec<MatchResponse> = single
        .submit_batch(batch.clone())
        .expect("the in-process worker pool cannot reject a batch");
    let single_time = start.elapsed().as_secs_f64();
    let single_qps = batch.len() as f64 / single_time;

    println!("single engine\t{single_time:.3}s\t{single_qps:.1} q/s");
    println!("\nshards\tbuild_s\ttime_s\tqueries/sec\tvs-single");

    let mut rows = Vec::new();
    for &shards in &SHARD_COUNTS {
        let build_start = Instant::now();
        let sharded = ShardedEngine::new(
            repo.clone(),
            ShardedEngineConfig::default()
                .with_shards(shards)
                .with_placement(ShardPlacement::Contiguous)
                .with_router_workers(config.router_workers)
                .with_router_result_cache_capacity(config.queries.max(1))
                .with_engine_config(engine_config.clone()),
        );
        let build_seconds = build_start.elapsed().as_secs_f64();
        let start = Instant::now();
        let responses = sharded
            .submit_batch(batch.clone())
            .expect("in-process shards cannot reject a batch");
        let time_s = start.elapsed().as_secs_f64();
        let qps = batch.len() as f64 / time_s;

        // The merge-equivalence guard: identical content, query by query.
        for (i, (a, b)) in reference.iter().zip(&responses).enumerate() {
            assert_eq!(
                a.result_digest(),
                b.result_digest(),
                "query {i} diverged between the single engine and {shards} shards"
            );
        }

        let ShardedMetrics { router, per_shard } = sharded.metrics();
        println!(
            "{shards}\t{build_seconds:.3}\t{time_s:.3}\t{qps:.1}\t{:.2}",
            qps / single_qps
        );
        rows.push(ShardRow {
            shards,
            underprovisioned: xsm_bench::underprovisioned(
                shards * config.workers + config.router_workers,
            ),
            build_seconds,
            time_s,
            queries_per_sec: qps,
            speedup_vs_single_engine: qps / single_qps,
            router_coalesced: router.coalesced_queries,
            per_shard_served: per_shard.iter().map(|m| m.queries_served).collect(),
        });
    }

    let record = ShardRecord {
        bench: "shard".to_string(),
        cores: xsm_bench::cores(),
        seed: config.seed,
        elements: config.elements,
        trees: repo.tree_count(),
        queries: config.queries,
        top_k: config.top_k,
        min_similarity: config.min_similarity,
        delta: config.delta,
        workers_per_shard: config.workers,
        router_workers: config.router_workers,
        single_engine_time_s: single_time,
        single_engine_qps: single_qps,
        rows,
    };
    let json = serde_json::to_string(&record).expect("shard record serializes");
    std::fs::write(&config.out, &json).expect("write shard benchmark JSON");
    eprintln!(
        "wrote {} (all {} sharded runs byte-identical to the single engine)",
        config.out,
        SHARD_COUNTS.len()
    );
}
