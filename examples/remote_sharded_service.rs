//! Networked sharded serving: every shard of the repository lives behind its
//! own TCP server, the router talks to them through [`RemoteEngine`] clients,
//! and the answers are still byte-identical to one in-process engine over the
//! whole repository. The transport is invisible in the content — and when a
//! shard process "crashes", the router degrades to the survivors instead of
//! failing, flags the response, and heals as soon as the shard is back.
//!
//! Run with:
//! ```text
//! cargo run --release --example remote_sharded_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator, RepositoryPartition, ShardPlacement};
use bellflower::schema::{SchemaNode, TreeBuilder};
use bellflower::service::{
    EngineConfig, MatchEngine, MatchQuery, MatchService, RemoteEngine, RemoteEngineConfig,
    ShardServer, ShardedEngine, ShardedEngineConfig,
};

const SHARDS: usize = 3;

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(1)
            .with_target_elements(2_000),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements across {SHARDS} TCP shards",
        repository.tree_count(),
        repository.total_nodes()
    );

    let engine_config = EngineConfig::builder()
        .workers(2)
        .element(ElementMatchConfig::default().with_min_similarity(0.5))
        .build()
        .expect("static engine config");

    // One server process per shard (here: per thread, on loopback). In a real
    // deployment these binds happen on different hosts and the router is handed
    // the addresses; nothing else changes.
    let partition = RepositoryPartition::build(&repository, SHARDS, ShardPlacement::TreeHash);
    let (parts, tree_maps) = partition.into_parts();
    let mut servers = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    let client_config = RemoteEngineConfig::default()
        .with_request_deadline(Duration::from_secs(30))
        .with_retries(2);
    for (shard, part) in parts.into_iter().enumerate() {
        let backend: Arc<dyn MatchService> =
            Arc::new(MatchEngine::new(part, engine_config.clone()));
        let server = ShardServer::bind("127.0.0.1:0", backend).expect("bind a loopback port");
        println!("  shard {shard} serving on {}", server.local_addr());
        let client = RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
            .expect("handshake with the shard server");
        services.push(Box::new(client));
        servers.push(server);
    }

    // The router is transport-agnostic: it scatters over `MatchService` trait
    // objects and never learns these are sockets.
    let router_config = ShardedEngineConfig::builder()
        .shards(SHARDS)
        .placement(ShardPlacement::TreeHash)
        .engine(engine_config.clone())
        .build()
        .expect("static router config");
    let router = ShardedEngine::from_services(services, tree_maps, router_config)
        .expect("assemble the remote fleet");

    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("person"))
        .child(SchemaNode::element("name"))
        .sibling(SchemaNode::element("email"))
        .build();
    let query = MatchQuery::new(personal).with_top_k(5).with_threshold(0.6);
    let response = router
        .answer_inline(&query)
        .expect("a healthy fleet answers");
    println!(
        "\nnetworked answer: {} of {} matches (strategy {:?}, incomplete: {})",
        response.mappings.len(),
        response.total_matches,
        response.strategy,
        response.incomplete
    );

    // The contract survives the wire: a single in-process engine over the whole
    // repository produces the same bytes.
    let single = MatchEngine::new(repository, engine_config);
    let reference = single.query(query.clone());
    assert_eq!(reference.result_digest(), response.result_digest());
    println!("single-engine digest matches: the transport is invisible in the answer");

    // Crash one shard and ask something new (the first answer is already in
    // the router's result cache — complete answers stay servable even with a
    // shard down). The router degrades to the survivors and says so:
    // `incomplete` is set and `failed_shards` names the hole.
    servers[0].suspend();
    let fresh = MatchQuery::new(query.personal.clone())
        .with_top_k(3)
        .with_threshold(0.55);
    let degraded = router
        .answer_inline(&fresh)
        .expect("survivors still answer");
    println!(
        "\nshard 0 down: {} matches from the survivors (incomplete: {}, failed shards {:?})",
        degraded.mappings.len(),
        degraded.incomplete,
        degraded.failed_shards
    );
    assert!(degraded.incomplete);
    assert_eq!(degraded.failed_shards, vec![0]);

    // Bring it back and re-ask the same query: degraded responses are never
    // cached, so the router re-scatters, the client redials, and the full
    // answer returns — identical to the single engine's.
    servers[0].resume();
    let healed = router.answer_inline(&fresh).expect("healed fleet answers");
    assert!(!healed.incomplete);
    assert_eq!(healed.result_digest(), single.query(fresh).result_digest());
    println!("shard 0 back: full answer restored, digest identical again");

    let metrics = router.metrics();
    println!(
        "\nrouter: {} served, {} degraded; per-shard served = {:?}",
        metrics.router.queries_served,
        metrics.router.degraded_responses,
        metrics
            .per_shard
            .iter()
            .map(|m| m.queries_served)
            .collect::<Vec<_>>()
    );
}
