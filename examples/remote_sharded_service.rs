//! Networked sharded serving: every shard of the repository lives behind its
//! own TCP server, the router talks to them through [`RemoteEngine`] clients,
//! and the answers are still byte-identical to one in-process engine over the
//! whole repository. The transport is invisible in the content — and when a
//! shard process "crashes", the router degrades to the survivors instead of
//! failing, flags the response, and heals as soon as the shard is back.
//!
//! Run with:
//! ```text
//! cargo run --release --example remote_sharded_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{
    GeneratorConfig, RepositoryGenerator, RepositoryPartition, ShardPlacement, SnapshotReader,
};
use bellflower::schema::{SchemaNode, TreeBuilder, TreeId};
use bellflower::service::{
    write_shard_snapshots, EngineConfig, MatchEngine, MatchQuery, MatchService, RemoteEngine,
    RemoteEngineConfig, ShardServer, ShardedEngine, ShardedEngineConfig,
};

const SHARDS: usize = 3;

/// The repository revision stamped into every shard snapshot; a restarting
/// fleet refuses files of any other generation.
const GENERATION: u64 = 42;

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(1)
            .with_target_elements(2_000),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements across {SHARDS} TCP shards",
        repository.tree_count(),
        repository.total_nodes()
    );

    let engine_config = EngineConfig::builder()
        .workers(2)
        .element(ElementMatchConfig::default().with_min_similarity(0.5))
        .build()
        .expect("static engine config");

    // One server process per shard (here: per thread, on loopback). In a real
    // deployment these binds happen on different hosts and the router is handed
    // the addresses; nothing else changes.
    let partition = RepositoryPartition::build(&repository, SHARDS, ShardPlacement::TreeHash);
    let (parts, tree_maps) = partition.into_parts();
    let mut servers = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    let client_config = RemoteEngineConfig::default()
        .with_request_deadline(Duration::from_secs(30))
        .with_retries(2);
    for (shard, part) in parts.into_iter().enumerate() {
        let backend: Arc<dyn MatchService> =
            Arc::new(MatchEngine::new(part, engine_config.clone()));
        let server = ShardServer::bind("127.0.0.1:0", backend).expect("bind a loopback port");
        println!("  shard {shard} serving on {}", server.local_addr());
        let client = RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
            .expect("handshake with the shard server");
        services.push(Box::new(client));
        servers.push(server);
    }

    // The router is transport-agnostic: it scatters over `MatchService` trait
    // objects and never learns these are sockets.
    let router_config = ShardedEngineConfig::builder()
        .shards(SHARDS)
        .placement(ShardPlacement::TreeHash)
        .engine(engine_config.clone())
        .build()
        .expect("static router config");
    let router = ShardedEngine::from_services(services, tree_maps, router_config)
        .expect("assemble the remote fleet");

    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("person"))
        .child(SchemaNode::element("name"))
        .sibling(SchemaNode::element("email"))
        .build();
    let query = MatchQuery::new(personal).with_top_k(5).with_threshold(0.6);
    let response = router
        .answer_inline(&query)
        .expect("a healthy fleet answers");
    println!(
        "\nnetworked answer: {} of {} matches (strategy {:?}, incomplete: {})",
        response.mappings.len(),
        response.total_matches,
        response.strategy,
        response.incomplete
    );

    // Ship the fleet as files: one snapshot per shard, same partition the
    // router serves, all stamped with the same generation. These are what the
    // warm-restart leg below boots from.
    let snapshot_dir = std::env::temp_dir().join("bellflower-remote-shards");
    std::fs::create_dir_all(&snapshot_dir).expect("create snapshot directory");
    let snapshot_paths = write_shard_snapshots(
        &repository,
        SHARDS,
        ShardPlacement::TreeHash,
        &snapshot_dir,
        GENERATION,
    )
    .expect("write per-shard snapshots");

    // The contract survives the wire: a single in-process engine over the whole
    // repository produces the same bytes.
    let single = MatchEngine::new(repository, engine_config.clone());
    let reference = single.query(query.clone());
    assert_eq!(reference.result_digest(), response.result_digest());
    println!("single-engine digest matches: the transport is invisible in the answer");

    // Crash one shard and ask something new (the first answer is already in
    // the router's result cache — complete answers stay servable even with a
    // shard down). The router degrades to the survivors and says so:
    // `incomplete` is set and `failed_shards` names the hole.
    servers[0].suspend();
    let fresh = MatchQuery::new(query.personal.clone())
        .with_top_k(3)
        .with_threshold(0.55);
    let degraded = router
        .answer_inline(&fresh)
        .expect("survivors still answer");
    println!(
        "\nshard 0 down: {} matches from the survivors (incomplete: {}, failed shards {:?})",
        degraded.mappings.len(),
        degraded.incomplete,
        degraded.failed_shards
    );
    assert!(degraded.incomplete);
    assert_eq!(degraded.failed_shards, vec![0]);

    // Bring it back and re-ask the same query: degraded responses are never
    // cached, so the router re-scatters, the client redials, and the full
    // answer returns — identical to the single engine's.
    servers[0].resume();
    let healed = router.answer_inline(&fresh).expect("healed fleet answers");
    assert!(!healed.incomplete);
    assert_eq!(healed.result_digest(), single.query(fresh).result_digest());
    println!("shard 0 back: full answer restored, digest identical again");

    let metrics = router.metrics();
    println!(
        "\nrouter: {} served, {} degraded; per-shard served = {:?}",
        metrics.router.queries_served,
        metrics.router.degraded_responses,
        metrics
            .per_shard
            .iter()
            .map(|m| m.queries_served)
            .collect::<Vec<_>>()
    );

    // Warm restart: tear the whole fleet down and boot it again from the
    // snapshot files — no JSON parse, no index rebuild, no relabeling. Each
    // server loads its shard file (refusing any generation but GENERATION),
    // and the router's tree maps come from the snapshot headers themselves.
    drop(router);
    drop(servers);
    let mut restarted_servers = Vec::new();
    let mut restarted_services: Vec<Box<dyn MatchService>> = Vec::new();
    let mut restarted_tree_maps = Vec::new();
    for (shard, path) in snapshot_paths.iter().enumerate() {
        let header = SnapshotReader::peek(path).expect("snapshot header validates");
        restarted_tree_maps.push(header.tree_map.iter().map(|&t| TreeId(t)).collect());
        let server = ShardServer::bind_snapshot(
            "127.0.0.1:0",
            path,
            engine_config.clone(),
            Some(GENERATION),
        )
        .expect("boot a shard server from its snapshot");
        println!(
            "  shard {shard} restarted from {} on {}",
            path.file_name().unwrap().to_string_lossy(),
            server.local_addr()
        );
        let client = RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
            .expect("handshake with the restarted shard");
        restarted_services.push(Box::new(client));
        restarted_servers.push(server);
    }
    let restarted = ShardedEngine::from_services(
        restarted_services,
        restarted_tree_maps,
        ShardedEngineConfig::builder()
            .shards(SHARDS)
            .placement(ShardPlacement::TreeHash)
            .engine(engine_config)
            .build()
            .expect("static router config"),
    )
    .expect("assemble the restarted fleet");

    let warm = restarted
        .answer_inline(&query)
        .expect("restarted fleet answers");
    assert_eq!(reference.result_digest(), warm.result_digest());
    let warm_metrics = restarted.metrics();
    println!(
        "\nwarm restart: digest identical to the cold fleet; per-shard startup = {:?}",
        warm_metrics
            .per_shard
            .iter()
            .map(|m| format!(
                "{} in {:.1}ms",
                m.startup_source.label(),
                m.startup_micros as f64 / 1e3
            ))
            .collect::<Vec<_>>()
    );
}
