//! Quickstart: match a small personal schema against a synthetic repository, first
//! with the plain (non-clustered) Bellflower matcher, then with clustered matching,
//! and compare the work done and the mappings found.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use bellflower::clustering::{ClusteredMatcher, ClusteringVariant};
use bellflower::matcher::element::{ElementMatchConfig, NameElementMatcher};
use bellflower::matcher::{BranchAndBoundGenerator, MatchingProblem, ObjectiveConfig};
use bellflower::repo::{GeneratorConfig, RepositoryGenerator};
use bellflower::schema::{SchemaNode, TreeBuilder};

fn main() {
    // 1. A repository of XML schemas. Here we generate a synthetic one; see the
    //    `load_real_schemas` example for parsing actual DTD/XSD files.
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(1)
            .with_target_elements(3_000),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements",
        repository.tree_count(),
        repository.total_nodes()
    );

    // 2. The personal schema: the user's own view of the data they are looking for.
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("book"))
        .child(SchemaNode::element("title"))
        .sibling(SchemaNode::element("author"))
        .build();

    // 3. The matching problem: personal schema + objective function + threshold δ.
    let problem = MatchingProblem::new(personal, ObjectiveConfig::default().with_alpha(0.5), 0.7);

    // 4. Run the non-clustered baseline and the clustered matcher on the same problem.
    let generator = BranchAndBoundGenerator::new();
    let element_config = ElementMatchConfig::default().with_min_similarity(0.45);

    let baseline = ClusteredMatcher::baseline()
        .with_element_config(element_config.clone())
        .run_with_matcher(&problem, &repository, &NameElementMatcher, &generator);
    let clustered = ClusteredMatcher::for_variant(ClusteringVariant::Medium)
        .with_element_config(element_config)
        .run_with_matcher(&problem, &repository, &NameElementMatcher, &generator);

    for report in [&baseline, &clustered] {
        println!(
            "\n[{}] search space: {} assignments, partial mappings expanded: {}, \
             mappings with Δ ≥ {}: {}",
            report.label,
            report.cluster_stats.total_search_space,
            report.generator_counters.partial_mappings,
            problem.threshold,
            report.mappings.len()
        );
    }

    // 5. Show the best mappings the clustered matcher found.
    println!("\ntop clustered mappings:");
    for mapping in clustered.mappings.iter().take(5) {
        let tree = repository.tree(mapping.repo_tree().unwrap()).unwrap();
        let images: Vec<String> = mapping
            .pairs()
            .iter()
            .map(|p| {
                format!(
                    "{} -> {}",
                    problem.personal.name_of(p.personal),
                    tree.absolute_path(p.repo.node)
                )
            })
            .collect();
        println!(
            "  Δ = {:.3} in schema '{}': {}",
            mapping.score,
            tree.name(),
            images.join(", ")
        );
    }
    if clustered.mappings.is_empty() {
        println!("  (no mapping reached the threshold — try lowering δ)");
    }
}
