//! The efficiency/effectiveness trade-off: sweep the clustering granularity (the join
//! distance threshold of the reclustering step) and report, for each setting, how much
//! of the search space remains and how many of the baseline's mappings are preserved.
//! This is the knob the paper's Sec. 2.3 describes: "the more clusters the more
//! efficient schema matching, but the higher the chances of losing some valuable
//! schema mappings."
//!
//! Run with:
//! ```text
//! cargo run --release --example tradeoff_tuning
//! ```

use bellflower::clustering::metrics::{preservation_curve, search_space_reduction};
use bellflower::clustering::{ClusteredMatcher, ClusteringConfig};
use bellflower::matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use bellflower::matcher::{BranchAndBoundGenerator, MatchingProblem};
use bellflower::repo::{GeneratorConfig, RepositoryGenerator};

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(99)
            .with_target_elements(4_000),
    )
    .generate();
    let problem = MatchingProblem::paper_experiment();
    let candidates = match_elements(
        &problem.personal,
        &repository,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.4),
    );
    println!(
        "repository: {} elements / {} trees, mapping elements: {}",
        repository.total_nodes(),
        repository.tree_count(),
        candidates.total_candidates()
    );

    let generator = BranchAndBoundGenerator::new();
    let baseline = ClusteredMatcher::baseline().run_on_candidates(
        &problem,
        &repository,
        &candidates,
        &generator,
    );
    println!(
        "\nbaseline (one cluster per tree): search space {}, {} mappings with Δ ≥ {}\n",
        baseline.cluster_stats.total_search_space,
        baseline.mappings.len(),
        problem.threshold
    );

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>14}",
        "join distance", "#clusters", "space", "reduction", "preserved", "preserved@0.9"
    );
    for join_distance in [1u32, 2, 3, 4, 5, 6] {
        let config = ClusteringConfig::default().with_join_distance(join_distance);
        let report = ClusteredMatcher::clustered(config).run_on_candidates(
            &problem,
            &repository,
            &candidates,
            &generator,
        );
        let reduction = search_space_reduction(
            baseline.cluster_stats.total_search_space,
            report.cluster_stats.total_search_space,
        )
        .unwrap_or(f64::INFINITY);
        let curve = preservation_curve(
            &baseline.mappings,
            &report.mappings,
            &[problem.threshold, 0.9],
        );
        println!(
            "{:<14} {:>10} {:>12} {:>11.1}x {:>11.1}% {:>13.1}%",
            join_distance,
            report.cluster_stats.useful_clusters,
            report.cluster_stats.total_search_space,
            reduction,
            100.0 * curve[0].fraction,
            100.0 * curve[1].fraction,
        );
    }
    println!(
        "\nSmaller join distances give finer clusters: a smaller search space (more \
         efficiency) but fewer preserved mappings (less effectiveness). High-ranked \
         mappings (Δ ≥ 0.9) survive much longer than the overall average — the paper's \
         central observation."
    );
}
