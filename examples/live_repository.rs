//! A live repository: schemas arrive and disappear while the engine serves,
//! with no index rebuild. Appends extend the q-gram index in place, deletes
//! tombstone trees out of candidate generation instantly, and LSM-style
//! compaction reclaims the dead postings once they cross a threshold — all
//! stamped with a monotonically increasing generation so caches and snapshots
//! invalidate precisely. The answers stay byte-identical to a from-scratch
//! rebuild at the same logical content.
//!
//! Run with:
//! ```text
//! cargo run --release --example live_repository
//! ```

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator};
use bellflower::schema::{SchemaNode, TreeBuilder, TreeId};
use bellflower::service::{EngineConfig, MatchEngine, MatchQuery};

fn main() {
    // 1. The repository the service boots with.
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(7)
            .with_target_elements(2_000),
    )
    .generate();
    let engine_config = EngineConfig::default()
        .with_workers(2)
        .with_compaction_threshold(0.2)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5));
    let engine = MatchEngine::new(repository.clone(), engine_config.clone());
    println!(
        "boot: {} trees, {} elements, generation {}",
        repository.tree_count(),
        repository.total_nodes(),
        engine.generation()
    );

    let query = MatchQuery::new(
        TreeBuilder::new("personal")
            .root(SchemaNode::element("book"))
            .child(SchemaNode::element("title"))
            .sibling(SchemaNode::element("author"))
            .build(),
    )
    .with_top_k(3)
    .with_threshold(0.5);
    let before = engine.query(query.clone());
    println!(
        "\nbefore ingest: {} of {} matches at generation {}",
        before.mappings.len(),
        before.total_matches,
        before.generation
    );

    // 2. A new schema shows up on the "Internet" — append it live. No rebuild:
    //    the posting arena grows at the tail, existing entries untouched.
    let arrival = TreeBuilder::new("arrivals.dtd")
        .root(SchemaNode::element("book"))
        .child(SchemaNode::element("title"))
        .sibling(SchemaNode::element("author"))
        .sibling(SchemaNode::element("isbn"))
        .build();
    let assigned = engine.append_trees(vec![arrival]).expect("append succeeds");
    println!(
        "\nappended tree {:?}: generation {} (result cache invalidated)",
        assigned[0],
        engine.generation()
    );
    let after_append = engine.query(query.clone());
    println!(
        "after append: {} of {} matches — the new schema is queryable immediately",
        after_append.mappings.len(),
        after_append.total_matches
    );

    // 3. Schemas vanish too. A delete tombstones the tree: its postings are
    //    filtered from candidate generation at once, reclaimed physically when
    //    the dead fraction crosses the compaction threshold.
    let victims: Vec<TreeId> = (0..repository.tree_count() as u32 / 4)
        .map(TreeId)
        .collect();
    let dropped = engine.delete_trees(&victims).expect("delete succeeds");
    println!(
        "\ndeleted {} trees ({dropped} postings): generation {}, dead fraction {:.3}",
        victims.len(),
        engine.generation(),
        engine.dead_posting_fraction()
    );
    println!(
        "tombstoned: {} trees (a quarter of the forest crossed the 20% \
         threshold, so the arena auto-compacted)",
        engine.tombstoned_trees().len()
    );

    // 4. The contract behind all of it: the incrementally-maintained engine
    //    answers byte-identically to a from-scratch rebuild over the same
    //    logical content (deleted trees as empty placeholders).
    let mut rebuilt = bellflower::repo::SchemaRepository::new();
    for (tid, tree) in repository.trees() {
        if engine.tombstoned_trees().binary_search(&tid).is_ok() {
            rebuilt.add_tree(bellflower::schema::SchemaTree::new(tree.name()));
        } else {
            rebuilt.add_tree(tree.clone());
        }
    }
    rebuilt.add_tree(
        TreeBuilder::new("arrivals.dtd")
            .root(SchemaNode::element("book"))
            .child(SchemaNode::element("title"))
            .sibling(SchemaNode::element("author"))
            .sibling(SchemaNode::element("isbn"))
            .build(),
    );
    let oracle = MatchEngine::new(rebuilt, engine_config);
    let live = engine.query(query.clone());
    let reference = oracle.query(query);
    assert_eq!(live.result_digest(), reference.result_digest());
    println!(
        "\nrebuild digest matches: incremental maintenance is invisible in the \
         answer (generation {} vs rebuild's {})",
        live.generation, reference.generation
    );
}
