//! Build a repository from real schema documents (DTDs and XSDs), inspect it, and run
//! the clustered matcher against it. Demonstrates the parsing substrate: pass a
//! directory path as the first argument to load `.dtd` / `.xsd` files from disk, or run
//! without arguments to use the embedded sample corpus.
//!
//! Run with:
//! ```text
//! cargo run --release --example load_real_schemas [path/to/schema/dir]
//! ```

use bellflower::clustering::{ClusteredMatcher, ClusteringVariant};
use bellflower::matcher::element::{ElementMatchConfig, NameElementMatcher};
use bellflower::matcher::{BranchAndBoundGenerator, MatchingProblem, ObjectiveConfig};
use bellflower::repo::corpus::{load_directory, load_documents};
use bellflower::repo::NameIndex;
use bellflower::schema::{SchemaNode, TreeBuilder};
use std::path::Path;

const SAMPLE_DOCS: &[(&str, &str)] = &[
    (
        "orders.xsd",
        r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="purchaseOrder"><xs:complexType><xs:sequence>
            <xs:element name="customer"><xs:complexType><xs:sequence>
              <xs:element name="customerName" type="xs:string"/>
              <xs:element name="shippingAddress" type="xs:string"/>
              <xs:element name="emailAddress" type="xs:string"/>
            </xs:sequence></xs:complexType></xs:element>
            <xs:element name="item" maxOccurs="unbounded"><xs:complexType><xs:sequence>
              <xs:element name="productName" type="xs:string"/>
              <xs:element name="quantity" type="xs:int"/>
              <xs:element name="unitPrice" type="xs:decimal"/>
            </xs:sequence><xs:attribute name="sku" type="xs:ID" use="required"/></xs:complexType></xs:element>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#,
    ),
    (
        "staff.dtd",
        r#"
        <!ELEMENT staffDirectory (employee+)>
        <!ELEMENT employee (fullName, workEmail, officeAddress, department)>
        <!ELEMENT fullName (#PCDATA)>
        <!ELEMENT workEmail (#PCDATA)>
        <!ELEMENT officeAddress (#PCDATA)>
        <!ELEMENT department (#PCDATA)>
        <!ATTLIST employee id ID #REQUIRED>
        "#,
    ),
    (
        "articles.xsd",
        r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="journal"><xs:complexType><xs:sequence>
            <xs:element name="article" maxOccurs="unbounded"><xs:complexType><xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="authorName" type="xs:string" maxOccurs="unbounded"/>
              <xs:element name="contactEmail" type="xs:string"/>
            </xs:sequence></xs:complexType></xs:element>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#,
    ),
];

fn main() {
    // 1. Load the corpus — from a directory if given, otherwise the embedded samples.
    let (repository, report) = match std::env::args().nth(1) {
        Some(dir) => load_directory(Path::new(&dir)).expect("readable schema directory"),
        None => load_documents(SAMPLE_DOCS.iter().copied()),
    };
    println!(
        "loaded {} files ({} skipped) -> {} trees / {} nodes",
        report.loaded_files.len(),
        report.skipped_files.len(),
        repository.tree_count(),
        repository.total_nodes()
    );
    for (path, reason) in &report.skipped_files {
        println!("  skipped {}: {}", path.display(), reason);
    }
    let stats = repository.stats();
    println!(
        "forest statistics: avg tree size {:.1}, max {} nodes, {} distinct names\n",
        stats.avg_tree_size, stats.max_tree_size, stats.distinct_names
    );

    // 2. The name index gives exact and approximate lookups over the whole forest.
    let index = NameIndex::build(&repository);
    for query in ["email", "address", "name"] {
        let approx = index.lookup_approximate(query, 0.4);
        println!(
            "index lookup '{query}': {} exact, {} approximate candidates",
            index.lookup_exact(query).len(),
            approx.len()
        );
    }

    // 3. Match the paper's personal schema against the loaded corpus.
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("name"))
        .child(SchemaNode::element("address"))
        .sibling(SchemaNode::element("email"))
        .build();
    let problem = MatchingProblem::new(personal, ObjectiveConfig::default(), 0.6);
    let report = ClusteredMatcher::for_variant(ClusteringVariant::Medium)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.3))
        .run_with_matcher(
            &problem,
            &repository,
            &NameElementMatcher,
            &BranchAndBoundGenerator::new(),
        );

    println!(
        "\nmappings with Δ ≥ {} (clustered matcher):",
        problem.threshold
    );
    for mapping in report.mappings.iter().take(8) {
        let tree = repository.tree(mapping.repo_tree().unwrap()).unwrap();
        let pairs: Vec<String> = mapping
            .pairs()
            .iter()
            .map(|p| {
                format!(
                    "{} ↦ {}",
                    problem.personal.name_of(p.personal),
                    tree.absolute_path(p.repo.node)
                )
            })
            .collect();
        println!(
            "  Δ = {:.3} [{}] {}",
            mapping.score,
            tree.name(),
            pairs.join(", ")
        );
    }
}
