//! Serving queries with the `MatchEngine`: build the engine once over a repository
//! (name index, clustering config and similarity cache are amortised up front), then
//! answer single and batched top-k queries concurrently and read the live metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example service_quickstart
//! ```

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator};
use bellflower::schema::{SchemaNode, TreeBuilder};
use bellflower::service::{EngineConfig, MatchEngine, MatchQuery, QueryStrategy};

fn main() {
    // 1. A repository of XML schemas (synthetic here; `load_real_schemas` shows how
    //    to parse DTD/XSD files into the same structure).
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(1)
            .with_target_elements(3_000),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements",
        repository.tree_count(),
        repository.total_nodes()
    );

    // 2. Build the engine ONCE. This is the expensive step a long-lived service
    //    amortises: q-gram index construction, cache allocation, worker spawn.
    let engine = MatchEngine::new(
        repository,
        EngineConfig::default()
            .with_workers(4)
            .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5)),
    );
    println!(
        "engine: {} workers, {} distinct indexed names",
        engine.workers(),
        engine.index().distinct_names()
    );

    // 3. One interactive query: a personal schema plus top-k.
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("book"))
        .child(SchemaNode::element("title"))
        .sibling(SchemaNode::element("author"))
        .build();
    let response = engine.query(
        MatchQuery::new(personal.clone())
            .with_top_k(3)
            .with_threshold(0.6),
    );
    println!(
        "\ntop-3 for book(title, author) [{} candidates, strategy {:?}]:",
        response.candidate_count, response.strategy
    );
    for mapping in &response.mappings {
        let repository = engine.repository();
        let tree = repository.tree(mapping.repo_tree().unwrap()).unwrap();
        let images: Vec<String> = mapping
            .pairs()
            .iter()
            .map(|p| {
                format!(
                    "{} -> {}",
                    personal.name_of(p.personal),
                    tree.absolute_path(p.repo.node)
                )
            })
            .collect();
        println!("  Δ = {:.3}  {}", mapping.score, images.join(", "));
    }

    // 4. A batch: many users' schemas served concurrently, responses in input order.
    //    Repeating the earlier query shows the result cache at work.
    let batch = vec![
        MatchQuery::new(personal.clone())
            .with_top_k(3)
            .with_threshold(0.6),
        MatchQuery::new(
            TreeBuilder::new("personal")
                .root(SchemaNode::element("person"))
                .child(SchemaNode::element("name"))
                .sibling(SchemaNode::element("email"))
                .build(),
        )
        .with_top_k(2),
        MatchQuery::new(
            TreeBuilder::new("personal")
                .root(SchemaNode::element("order"))
                .child(SchemaNode::element("date"))
                .sibling(SchemaNode::element("price"))
                .build(),
        )
        .with_strategy(QueryStrategy::IndexPruned),
    ];
    let responses = engine
        .submit_batch(batch)
        .expect("the in-process worker pool cannot reject a batch");
    println!("\nbatch of {}:", responses.len());
    for r in &responses {
        println!(
            "  {} mappings (of {} ≥ δ), strategy {:?}, cache_hit={}, {:?}",
            r.mappings.len(),
            r.total_matches,
            r.strategy,
            r.cache_hit,
            r.latency
        );
    }

    // 5. Live metrics: what a scraper would export for dashboards/alerts.
    let m = engine.metrics();
    println!(
        "\nmetrics: {} served | result-cache hit rate {:.0}% | {} coalesced | \
         {} index-pruned / {} exhaustive | p50 ≤ {} µs, p99 ≤ {} µs",
        m.queries_served,
        100.0 * m.result_cache_hit_rate,
        m.coalesced_queries,
        m.index_pruned_queries,
        m.exhaustive_queries,
        m.p50_latency_us,
        m.p99_latency_us
    );
}
