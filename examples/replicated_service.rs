//! Self-healing replicated serving: each shard is a [`ReplicaSet`] of
//! interchangeable TCP backends with circuit breakers, hedged requests and a
//! background prober — so a crashed replica costs failovers, never failed
//! queries, and heals with no traffic at all. A second act flips the whole
//! fleet to a new snapshot generation under live queries: the zero-downtime
//! swap.
//!
//! Run with:
//! ```text
//! cargo run --release --example replicated_service
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator, RepositoryPartition, ShardPlacement};
use bellflower::service::workload::seeded_personal_schemas;
use bellflower::service::{
    write_shard_snapshots, BreakerState, EngineConfig, HealthConfig, MatchEngine, MatchQuery,
    MatchService, QueryStrategy, RemoteEngine, RemoteEngineConfig, ReplicaSet, ReplicaSetConfig,
    ShardServer, ShardedEngine, ShardedEngineConfig,
};

const SHARDS: usize = 2;
const REPLICAS: usize = 2;

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(7)
            .with_target_elements(1_500),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements; {SHARDS} shards × {REPLICAS} TCP replicas",
        repository.tree_count(),
        repository.total_nodes()
    );

    let engine_config = EngineConfig::builder()
        .workers(1)
        .element(ElementMatchConfig::default().with_min_similarity(0.5))
        .build()
        .expect("static engine config");
    let client_config = RemoteEngineConfig::default()
        .with_connect_timeout(Duration::from_millis(300))
        .with_io_timeout(Duration::from_millis(500))
        .with_request_deadline(Duration::from_secs(5))
        .with_retries(1)
        .with_backoff(Duration::from_millis(5));

    // Every replica of a shard serves the identical partition, so any
    // replica's answer is authoritative — that determinism is what makes
    // failover and hedging safe.
    let partition = RepositoryPartition::build(&repository, SHARDS, ShardPlacement::Contiguous);
    let (parts, tree_maps) = partition.into_parts();
    let mut servers = Vec::new();
    let mut replica_sets = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    for (shard, part) in parts.into_iter().enumerate() {
        let mut backends: Vec<Box<dyn MatchService>> = Vec::new();
        for replica in 0..REPLICAS {
            let backend: Arc<dyn MatchService> =
                Arc::new(MatchEngine::new(part.clone(), engine_config.clone()));
            let server = ShardServer::bind("127.0.0.1:0", backend).expect("bind a loopback port");
            println!(
                "  shard {shard} replica {replica} on {}",
                server.local_addr()
            );
            let client =
                RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
                    .expect("handshake with the replica server");
            backends.push(Box::new(client));
            servers.push(server);
        }
        // The replica set is a MatchService, so it drops into a router shard
        // slot exactly where a single backend would go. The 25ms prober
        // redials suspected-dead replicas in the background.
        let set = Arc::new(
            ReplicaSet::new(
                backends,
                ReplicaSetConfig::default()
                    // One failure opens the breaker — demo-crisp; production
                    // would keep the default threshold.
                    .with_health(HealthConfig::default().with_failure_threshold(1))
                    .with_probe_interval(Some(Duration::from_millis(25))),
            )
            .expect("assemble the replica set"),
        );
        services.push(Box::new(Arc::clone(&set)));
        replica_sets.push(set);
    }
    let router_config = ShardedEngineConfig::builder()
        .shards(SHARDS)
        .placement(ShardPlacement::Contiguous)
        .engine(engine_config.clone())
        .build()
        .expect("static router config");
    let fleet = ShardedEngine::from_services(services, tree_maps, router_config)
        .expect("assemble the replicated fleet");

    let single = MatchEngine::new(repository.clone(), engine_config.clone());
    let queries: Vec<MatchQuery> = seeded_personal_schemas(&repository, 8)
        .into_iter()
        .map(|p| {
            MatchQuery::new(p)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(QueryStrategy::Auto)
        })
        .collect();

    // Healthy serving: byte-identical to one unsharded, unreplicated engine.
    for query in &queries[..4] {
        let response = fleet.answer_inline(query).expect("healthy fleet answers");
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest()
        );
    }
    println!("\nhealthy fleet: all answers byte-identical to the single engine");

    // Crash shard 0's replica 0 — the port stays bound, connections just die,
    // the realistic wedge. Fresh queries (the healthy ones are already in the
    // router's result cache): the replica set fails over inside the shard, so
    // the router never even sees a degraded response.
    servers[0].suspend();
    for query in &queries[4..] {
        let response = fleet
            .answer_inline(query)
            .expect("replicated shard answers");
        assert!(!response.incomplete, "a replicated shard never degrades");
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest()
        );
    }
    let metrics = replica_sets[0].metrics_snapshot().expect("local metrics");
    println!(
        "replica down: 0 failed queries; {} failovers, {} hedges, {} breaker opens; \
         breakers now {:?}",
        metrics.failovers,
        metrics.hedged_queries,
        metrics.breaker_opens,
        replica_sets[0].breaker_states()
    );
    assert_eq!(metrics.failed_queries, 0);

    // Resume the server and just wait: the *background* prober redials the
    // open breaker and closes it — healing needs no query traffic.
    servers[0].resume();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !replica_sets[0]
        .breaker_states()
        .iter()
        .all(|s| *s == BreakerState::Closed)
    {
        assert!(Instant::now() < deadline, "prober did not heal within 5s");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "replica back: prober redialed and closed the breaker ({} redials), no traffic needed",
        replica_sets[0]
            .metrics_snapshot()
            .expect("local metrics")
            .probe_redials
    );

    // ── Act two: zero-downtime generation swap ──────────────────────────────
    // A fleet booted from generation-1 snapshot files flips to generation 2
    // while queries are in flight: load-beside, one atomic pointer swap per
    // shard under the router's write gate, then the old engines drain.
    let snapshot_dir = std::env::temp_dir().join("bellflower-replicated-swap");
    let gen1_dir = snapshot_dir.join("gen1");
    let gen2_dir = snapshot_dir.join("gen2");
    std::fs::create_dir_all(&gen1_dir).expect("create snapshot directory");
    std::fs::create_dir_all(&gen2_dir).expect("create snapshot directory");
    let gen1 = write_shard_snapshots(
        &repository,
        SHARDS,
        ShardPlacement::Contiguous,
        &gen1_dir,
        1,
    )
    .expect("write generation-1 snapshots");
    let gen2 = write_shard_snapshots(
        &repository,
        SHARDS,
        ShardPlacement::Contiguous,
        &gen2_dir,
        2,
    )
    .expect("write generation-2 snapshots");

    let swappable = ShardedEngine::from_swappable_snapshot_paths(
        &gen1,
        ShardedEngineConfig::builder()
            .shards(SHARDS)
            .placement(ShardPlacement::Contiguous)
            .engine(engine_config.clone())
            .build()
            .expect("static router config"),
    )
    .expect("boot the swappable fleet from generation 1");
    println!(
        "\nswappable fleet up, serving generation {:?}",
        swappable.serving_generation()
    );

    let before = swappable
        .answer_inline(&queries[0])
        .expect("generation 1 answers");
    assert_eq!(before.generation, 1);
    assert_eq!(
        before.result_digest(),
        single.answer_inline(&queries[0]).result_digest()
    );

    let swapped_to = swappable
        .swap_generation(&gen2)
        .expect("flip the fleet to generation 2");
    let after = swappable
        .answer_inline(&queries[0])
        .expect("generation 2 answers");
    assert_eq!(swapped_to, 2);
    assert_eq!(after.generation, 2);
    assert_eq!(
        after.result_digest(),
        before.result_digest(),
        "same repository content, new revision stamp"
    );
    println!(
        "zero-downtime swap: generation {} → {} with identical answers; \
         router counted {} swaps, {} failed queries",
        before.generation,
        after.generation,
        swappable.metrics().router.generation_swaps,
        swappable.metrics().router.failed_queries
    );

    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
