//! Compare the three reclustering strategies of the paper's Sec. 4 (none / join /
//! join & remove) on one workload and print the cluster-size distributions — a small,
//! fast version of the Fig. 4 experiment (the full one is `cargo run -p xsm-bench
//! --bin fig4 --release`).
//!
//! Run with:
//! ```text
//! cargo run --release --example reclustering_strategies
//! ```

use bellflower::clustering::config::ReclusterStrategy;
use bellflower::clustering::report::SizeHistogram;
use bellflower::clustering::{ClusteringConfig, KMeansClusterer};
use bellflower::matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use bellflower::matcher::MatchingProblem;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator};

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(5)
            .with_target_elements(4_000),
    )
    .generate();
    let problem = MatchingProblem::paper_experiment();
    let candidates = match_elements(
        &problem.personal,
        &repository,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.4),
    );
    println!(
        "clustering {} mapping elements ({} distinct repository nodes)\n",
        candidates.total_candidates(),
        candidates.distinct_repo_nodes()
    );

    for (label, strategy) in [
        ("no reclustering", ReclusterStrategy::None),
        ("join", ReclusterStrategy::Join),
        ("join & remove", ReclusterStrategy::JoinAndRemove),
    ] {
        let config = ClusteringConfig::default().with_recluster(strategy);
        let clusterer = KMeansClusterer::new(config);
        let (clusters, stats) = clusterer.cluster(&repository, &candidates);
        let histogram = SizeHistogram::from_sizes(&clusters.sizes());
        println!(
            "{label}: {} clusters after {} iterations ({} elements left unassigned)",
            clusters.len(),
            stats.iterations,
            stats.unassigned_nodes
        );
        println!("{}\n", histogram.render());
    }
    println!(
        "The 'join' step merges competing nearby seed clusters (curing the tiny-cluster \
         problem); 'remove' then dissolves what is left below the minimum size, so the \
         surviving clusters are the ones worth sending to the mapping generator."
    );
}
