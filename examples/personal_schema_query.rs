//! Personal-schema querying, the motivating scenario of the paper's introduction:
//! a user who does not know the structure of the repository writes a tiny *personal
//! schema* (`book/title,author`), the matcher finds the repository subtrees it maps
//! to, and a personal-schema query (`/book[title="Iliad"]/author`) is rewritten
//! against the best mapping.
//!
//! The matching itself goes through `bellflower::service::MatchEngine` — the same
//! engine a long-lived deployment would keep around — instead of hand-wiring element
//! matching and a generator per request.
//!
//! Run with:
//! ```text
//! cargo run --release --example personal_schema_query
//! ```

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::corpus::load_documents;
use bellflower::schema::tree::paper_personal_schema;
use bellflower::service::{EngineConfig, MatchEngine, MatchQuery};

/// A small "Internet" of schemas, including the Fig. 1 library fragment.
const REPOSITORY_DOCS: &[(&str, &str)] = &[
    (
        "library.dtd",
        r#"
        <!ELEMENT lib (book*, address)>
        <!ELEMENT book (data, shelf?)>
        <!ELEMENT data (title, authorName+)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT authorName (#PCDATA)>
        <!ELEMENT shelf (#PCDATA)>
        <!ELEMENT address (#PCDATA)>
        "#,
    ),
    (
        "bookstore.xsd",
        r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="bookstore"><xs:complexType><xs:sequence>
            <xs:element name="publication" maxOccurs="unbounded"><xs:complexType><xs:sequence>
              <xs:element name="heading" type="xs:string"/>
              <xs:element name="writer" type="xs:string"/>
              <xs:element name="price" type="xs:decimal"/>
            </xs:sequence></xs:complexType></xs:element>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#,
    ),
    (
        "people.dtd",
        r#"
        <!ELEMENT person (name, email, address)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
        <!ELEMENT address (#PCDATA)>
        "#,
    ),
];

fn main() {
    // 1. Load the repository from real schema documents (DTD and XSD mixed).
    let (repository, report) = load_documents(REPOSITORY_DOCS.iter().copied());
    println!(
        "loaded {} schema files into {} trees ({} skipped)",
        report.loaded_files.len(),
        repository.tree_count(),
        report.skipped_files.len()
    );

    // 2. Stand up the serving engine over it. The repository here is tiny, so the
    //    planner will simply pick the exhaustive path — the point is that the same
    //    call serves a 3-tree toy and a 10 000-element corpus.
    let engine = MatchEngine::new(
        repository,
        EngineConfig::default()
            .with_workers(2)
            .with_element_config(ElementMatchConfig::default().with_min_similarity(0.3)),
    );

    // 3. The personal schema of Fig. 1, served as a top-5 query with δ = 0.55.
    let personal = paper_personal_schema();
    let response = engine.query(
        MatchQuery::new(personal.clone())
            .with_top_k(5)
            .with_threshold(0.55),
    );
    println!("\nranked mapping choices for the personal schema 'book(title, author)':");
    for (rank, mapping) in response.mappings.iter().enumerate() {
        let repository = engine.repository();
        let tree = repository.tree(mapping.repo_tree().unwrap()).unwrap();
        let pairs: Vec<String> = mapping
            .pairs()
            .iter()
            .map(|p| {
                format!(
                    "{} ↦ {}",
                    personal.name_of(p.personal),
                    tree.absolute_path(p.repo.node)
                )
            })
            .collect();
        println!(
            "  #{:<2} Δ = {:.3}  [{}]  {}",
            rank + 1,
            mapping.score,
            tree.name(),
            pairs.join(", ")
        );
    }

    // 4. Rewrite the user's personal-schema query against the best mapping: the paper's
    //    /book[title="Iliad"]/author example.
    if let Some(best) = response.mappings.first() {
        let repository = engine.repository();
        let tree = repository.tree(best.repo_tree().unwrap()).unwrap();
        let book = personal.find_by_name("book").unwrap();
        let title = personal.find_by_name("title").unwrap();
        let author = personal.find_by_name("author").unwrap();
        let book_path = tree.absolute_path(best.image_of(book).unwrap().node);
        let title_path = tree.absolute_path(best.image_of(title).unwrap().node);
        let author_path = tree.absolute_path(best.image_of(author).unwrap().node);
        let rel = |full: &str, base: &str| {
            full.strip_prefix(base)
                .map(|s| s.trim_start_matches('/').to_string())
                .unwrap_or_else(|| full.to_string())
        };
        println!("\npersonal query : /book[title=\"Iliad\"]/author");
        println!(
            "rewritten query: {}[{}=\"Iliad\"]/{}   (against schema '{}')",
            book_path,
            rel(&title_path, &book_path),
            rel(&author_path, &book_path),
            tree.name()
        );
    }

    // 5. The engine kept score while we worked.
    let m = engine.metrics();
    println!(
        "\nserved {} query(ies); p50 ≤ {} µs; {} pipeline run(s) over the \
         precomputed feature store",
        m.queries_served,
        m.p50_latency_us,
        m.index_pruned_queries + m.exhaustive_queries
    );
}
