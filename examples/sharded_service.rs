//! Serving one repository from several engines: partition the forest by tree
//! across N shards, scatter each query to every shard and merge the per-shard
//! top-k answers — byte-identical to a single engine over the whole repository,
//! so sharding is purely a capacity decision.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharded_service
//! ```

use bellflower::matcher::element::ElementMatchConfig;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator, ShardPlacement};
use bellflower::schema::{SchemaNode, TreeBuilder};
use bellflower::service::{
    EngineConfig, MatchEngine, MatchQuery, ShardedEngine, ShardedEngineConfig,
};

fn main() {
    let repository = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(1)
            .with_target_elements(3_000),
    )
    .generate();
    println!(
        "repository: {} trees, {} elements",
        repository.tree_count(),
        repository.total_nodes()
    );

    // One engine per shard; the router scatters queries and merges answers. Trees
    // are placed deterministically (contiguous ranges balanced by node count here;
    // `ShardPlacement::TreeHash` keeps placement stable as the repository grows).
    let engine_config = EngineConfig::default()
        .with_workers(2)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5));
    let sharded = ShardedEngine::new(
        repository.clone(),
        ShardedEngineConfig::default()
            .with_shards(4)
            .with_placement(ShardPlacement::Contiguous)
            .with_engine_config(engine_config.clone()),
    );
    for shard in 0..sharded.shard_count() {
        println!(
            "  shard {shard}: {} trees, {} elements",
            sharded.shard_trees(shard).len(),
            sharded.shard_engines()[shard].repository().total_nodes()
        );
    }

    // A personal schema queried against the sharded repository.
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("person"))
        .child(SchemaNode::element("name"))
        .sibling(SchemaNode::element("email"))
        .build();
    let query = MatchQuery::new(personal).with_top_k(5).with_threshold(0.6);
    let response = sharded.query(query.clone());
    println!(
        "\nsharded answer: {} of {} matches (strategy {:?}, {} candidates)",
        response.mappings.len(),
        response.total_matches,
        response.strategy,
        response.candidate_count
    );
    for (rank, mapping) in response.mappings.iter().enumerate() {
        println!("  #{rank}: score {:.4}", mapping.score);
    }

    // The contract: a single engine over the whole repository answers with the
    // same bytes. Sharding changes capacity, never content.
    let single = MatchEngine::new(repository, engine_config);
    let reference = single.query(query);
    assert_eq!(reference.result_digest(), response.result_digest());
    println!("\nsingle-engine digest matches: sharding is invisible in the answer");

    let metrics = sharded.metrics();
    println!(
        "router: {} served, p50 ≤ {} µs; per-shard served = {:?}",
        metrics.router.queries_served,
        metrics.router.p50_latency_us,
        metrics
            .per_shard
            .iter()
            .map(|m| m.queries_served)
            .collect::<Vec<_>>()
    );
}
